// Package agg implements the hierarchical aggregation tier (DESIGN.md §15):
// an aggregator terminates N worker sessions, merges their sparse upward
// pushes into one combined push per aggregation window, forwards it over a
// single multiplexed upstream connection, and fans the server's downward
// diff back out — computing each worker's diff against a local mirror of
// the upstream shard and encoding it once per distinct subscriber state.
//
// Fidelity: merging is the union of Top-k supports with values summed in
// worker-slot order (Ozfatura et al., PAPERS.md — sparse contributions can
// be combined before the PS applies them because updates are additive), so
// the upstream server applies exactly the coordinates the workers sent.
// The mirror keeps M_agg == the upstream's v_agg bitwise (both accumulate
// the same downward diffs from zero in the same order), which is what makes
// the Eq. 5 fixpoint transitive: after drain, worker == v_k(mirror) ==
// M_agg == v_agg(upstream) == M(upstream), all bitwise.
//
// Failure model: an upstream restart (or any terminal upstream error)
// voids the mirror — the new upstream has no memory of v_agg, so every
// downward diff the mirror would compute is against forgotten state. The
// aggregator fails all in-flight windows, swaps in a fresh mirror paired
// with a fresh upstream incarnation, and fences its workers with
// transport.(*ExactlyOnce).Reset so they rejoin through hello → resync.
// The first merged window of the new incarnation hellos upstream, whose
// response is a dense snapshot that rebuilds the mirror in one apply.
package agg

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dgs/internal/ps"
	"dgs/internal/sparse"
	"dgs/internal/telemetry"
	"dgs/internal/transport"
)

// ErrClosed is returned to exchanges arriving after Close or Kill.
var ErrClosed = errors.New("agg: aggregator closed")

// errUpstream wraps the cause a window was failed with; workers treat it
// like any exchange failure — die, redial, rejoin as a fresh incarnation.
type errUpstream struct{ cause error }

func (e *errUpstream) Error() string { return fmt.Sprintf("agg: upstream reset: %v", e.cause) }
func (e *errUpstream) Unwrap() error { return e.cause }

// Config configures one aggregator.
type Config struct {
	// LayerSizes is the model geometry (must match workers and upstream).
	LayerSizes []int
	// MaxWorkers bounds distinct downstream worker ids (mirror slots).
	MaxWorkers int
	// Window is the merge batch size: a window is forwarded upstream when
	// this many workers contributed (default 16) or WindowWait elapsed
	// since its first contribution (default 500µs), whichever is first.
	Window     int
	WindowWait time.Duration
	// Depth is how many windows may be in flight upstream (default 2).
	Depth int
	// UpstreamWorker is this aggregator's worker id at the upstream server.
	UpstreamWorker int
	// Dial establishes the multiplexed upstream link (normally a DialMux
	// closure). Required.
	Dial func() (transport.MuxLink, error)
	// MaxRetries / Backoff / MaxBackoff shape the upstream session's
	// redial policy (zero values keep the transport defaults).
	MaxRetries int
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxInflight bounds concurrently admitted downstream exchanges
	// (0 = unbounded); RetryHint/DrainHint shape the rejection hints.
	MaxInflight int
	RetryHint   time.Duration
	DrainHint   time.Duration
	// ReplayWindow is the downstream replay cache depth (0 = transport
	// default; must cover the workers' pipeline depth).
	ReplayWindow int
	// BlockShift is the mirror's dirty-tracking block size (0 = auto).
	BlockShift uint
}

func (c *Config) normalise() error {
	if len(c.LayerSizes) == 0 {
		return errors.New("agg: empty layer geometry")
	}
	if c.MaxWorkers <= 0 {
		return errors.New("agg: MaxWorkers must be positive")
	}
	if c.Dial == nil {
		return errors.New("agg: upstream Dial required")
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.WindowWait <= 0 {
		c.WindowWait = 500 * time.Microsecond
	}
	if c.Depth < 1 {
		c.Depth = 2
	}
	return nil
}

// pending is one worker slot's in-flight exchange. A worker has at most one
// exchange outstanding (the session layer serialises per-worker frames), so
// each slot's pending struct — decode scratch, response buffer, completion
// channel — is reused without pooling.
type pending struct {
	slot  int
	upd   sparse.Update
	resp  []byte
	err   error
	ready chan struct{}
}

// window is one aggregation batch: the contributions that will merge into a
// single upstream push.
type window struct {
	gen     uint64
	parts   []*pending
	flushed bool
	timer   *time.Timer
}

// Stats are cumulative aggregator counters.
type Stats struct {
	// Windows forwarded upstream; Parts is worker pushes they contained.
	Windows uint64
	Parts   uint64
	// PartNNZ sums the contributions' coordinates, MergedNNZ the merged
	// frames'; their ratio is the upstream dedup factor.
	PartNNZ   uint64
	MergedNNZ uint64
	// SharedFrames were served from the encode-once cache; EncodedFrames
	// were encoded fresh.
	SharedFrames  uint64
	EncodedFrames uint64
	// UpstreamResets counts mirror rebuilds (upstream restarts/failures).
	UpstreamResets uint64
}

// Aggregator is the in-process aggregation engine. Serve its Handler over
// any transport listener (cmd/dgs-agg uses ListenTCP).
type Aggregator struct {
	cfg  Config
	eo   *transport.ExactlyOnce
	gate *transport.Gate

	mu      sync.Mutex
	loc     *ps.Server     // upstream mirror; replaced on upstream reset
	slots   map[int]int    // downstream worker id → mirror slot
	joinGen map[int]uint64 // worker id → upGen at last adoption
	pend    []*pending     // per mirror slot
	cur     *window        // filling window (nil between windows)
	upGen   uint64         // bumped on every upstream reset
	closed  bool
	killed  bool
	stats   Stats

	// windows carries flushed windows to the forwarder. Capacity covers the
	// worst case (every worker alone in a window), so sends — made under mu
	// — never block.
	windows chan *window
	done    chan struct{}

	// Forwarder-owned state (single goroutine, no locks).
	up       *transport.PipelinedSession
	inflight []*window
	merger   sparse.Merger
	merged   sparse.Update
	down     sparse.Update
	upFrame  []byte
	srcs     []*sparse.Update
	shareOK  bool
	shareH   uint64        // fingerprint horizon of the cached frame
	shareT   uint64        // gather timestamp of the cached frame
	shareBuf []byte        // encoded frame, copied to matching subscribers
	shareUpd sparse.Update // decoded frame, folded into matching subscribers' v_k
}

// New builds an aggregator and starts its upstream forwarder.
func New(cfg Config) (*Aggregator, error) {
	if err := cfg.normalise(); err != nil {
		return nil, err
	}
	a := &Aggregator{
		cfg:     cfg,
		slots:   make(map[int]int, cfg.MaxWorkers),
		joinGen: make(map[int]uint64, cfg.MaxWorkers),
		pend:    make([]*pending, 0, cfg.MaxWorkers),
		windows: make(chan *window, cfg.MaxWorkers+1),
		done:    make(chan struct{}),
	}
	a.loc = ps.NewServer(a.mirrorConfig())
	a.eo = transport.NewExactlyOnce(a.handle, a.onJoin)
	a.eo.Window = cfg.ReplayWindow
	a.gate = transport.NewGate(a.eo.Handle, cfg.MaxInflight)
	a.gate.RetryHint = cfg.RetryHint
	a.gate.DrainHint = cfg.DrainHint
	go a.run()
	return a, nil
}

func (a *Aggregator) mirrorConfig() ps.Config {
	return ps.Config{
		LayerSizes: a.cfg.LayerSizes,
		Workers:    a.cfg.MaxWorkers,
		BlockShift: a.cfg.BlockShift,
		Quiet:      true, // the mirror's counters would shadow the real server's
	}
}

// Handler is the downstream transport handler: admission gate outside the
// exactly-once session layer, same stacking as cmd/dgs-server.
func (a *Aggregator) Handler() transport.Handler { return a.gate.Handle }

// Sessions exposes the downstream session-layer counters.
func (a *Aggregator) Sessions() transport.SessionStats { return a.eo.Stats() }

// GateStats exposes the downstream admission counters.
func (a *Aggregator) GateStats() transport.GateStats { return a.gate.Stats() }

// Drain stops admitting downstream exchanges (workers get RetryAfter
// frames and back off) and waits for the in-flight ones to finish. Call
// before Close for a graceful shutdown: once Drain returns, no window is
// mid-flight and the upstream has absorbed every acknowledged push.
func (a *Aggregator) Drain(ctx context.Context) error { return a.gate.Drain(ctx) }

// Stats snapshots the aggregation counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Mirror returns the current upstream mirror (tests; read it only when no
// exchanges are in flight).
func (a *Aggregator) Mirror() *ps.Server {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.loc
}

func (a *Aggregator) slotLocked(worker int) (int, error) {
	if s, ok := a.slots[worker]; ok {
		return s, nil
	}
	if len(a.slots) >= a.cfg.MaxWorkers {
		return 0, fmt.Errorf("agg: worker %d rejected: %d slots in use", worker, a.cfg.MaxWorkers)
	}
	s := len(a.pend)
	a.slots[worker] = s
	a.pend = append(a.pend, &pending{slot: s, ready: make(chan struct{}, 1)})
	return s, nil
}

// onJoin adopts a (re)joining worker: bind its slot, stamp the upstream
// generation it joined under, and resync its mirror state so the hello
// response rebuilds the replica from the mirror's current model.
func (a *Aggregator) onJoin(worker int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return ErrClosed
	}
	slot, err := a.slotLocked(worker)
	if err != nil {
		return err
	}
	a.joinGen[worker] = a.upGen
	a.loc.Resync(slot)
	return nil
}

// handle is the inner downstream handler: decode, enqueue into the current
// window, wait for the window's upstream round trip, answer the gathered
// downward diff. The response is always raw — workers decode any
// registered codec, and the mirror's diffs are exact.
func (a *Aggregator) handle(worker int, payload []byte) ([]byte, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrClosed
	}
	slot, err := a.slotLocked(worker)
	if err != nil {
		a.mu.Unlock()
		return nil, err
	}
	if g, ok := a.joinGen[worker]; !ok || g != a.upGen {
		// Adopted under a dead upstream generation: the mirror state its
		// session was built on is gone. Fail the exchange so the worker
		// rejoins (hello → resync) under the current generation.
		a.mu.Unlock()
		return nil, fmt.Errorf("agg: worker %d predates upstream reset, rejoin required", worker)
	}
	p := a.pend[slot]
	if err := sparse.DecodeAnyInto(&p.upd, payload); err != nil {
		a.mu.Unlock()
		return nil, fmt.Errorf("agg: worker %d push: %w", worker, err)
	}
	w := a.cur
	if w == nil {
		w = &window{gen: a.upGen}
		a.cur = w
		w.timer = time.AfterFunc(a.cfg.WindowWait, func() {
			a.mu.Lock()
			if a.cur == w && !w.flushed {
				a.flushLocked(w)
			}
			a.mu.Unlock()
		})
	}
	w.parts = append(w.parts, p)
	if len(w.parts) >= a.cfg.Window {
		a.flushLocked(w)
	}
	a.mu.Unlock()

	<-p.ready
	if p.err != nil {
		return nil, p.err
	}
	return p.resp, nil
}

// flushLocked hands the window to the forwarder. Caller holds a.mu.
func (a *Aggregator) flushLocked(w *window) {
	w.flushed = true
	if w.timer != nil {
		w.timer.Stop()
	}
	if a.cur == w {
		a.cur = nil
	}
	a.stats.Windows++
	a.stats.Parts += uint64(len(w.parts))
	amet.windows.Inc()
	amet.parts.Add(uint64(len(w.parts)))
	a.windows <- w
}

// run is the upstream forwarder: the single goroutine that owns the
// pipelined upstream session and the mirror's apply/gather cycle. It keeps
// up to Depth windows in flight, eagerly completing the oldest when no new
// window is ready to submit.
func (a *Aggregator) run() {
	defer close(a.done)
	for {
		var w *window
		if len(a.inflight) == 0 {
			var ok bool
			if w, ok = <-a.windows; !ok {
				a.shutdown()
				return
			}
		} else if len(a.inflight) < a.cfg.Depth {
			select {
			case w2, ok := <-a.windows:
				if !ok {
					a.shutdown()
					return
				}
				w = w2
			default:
				a.completeOldest()
				continue
			}
		} else {
			a.completeOldest()
			continue
		}
		if a.isKilled() {
			a.failWindow(w, ErrClosed)
			continue
		}
		a.submit(w)
	}
}

// shutdown runs when the windows channel closes: complete (Close) or fail
// (Kill) the remaining in-flight windows, then release the upstream link.
func (a *Aggregator) shutdown() {
	for len(a.inflight) > 0 {
		if a.isKilled() {
			for _, w := range a.inflight {
				a.failWindow(w, ErrClosed)
			}
			a.inflight = a.inflight[:0]
			break
		}
		a.completeOldest()
	}
	if a.up != nil {
		a.up.Close()
		a.up = nil
	}
}

func (a *Aggregator) isKilled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.killed
}

// submit merges one window and forwards it upstream. Contributions are
// sorted by mirror slot first: the merge kernel's determinism contract
// makes the combined frame depend only on src order, so slot order makes it
// independent of arrival order.
func (a *Aggregator) submit(w *window) {
	parts := w.parts
	for i := 1; i < len(parts); i++ { // insertion sort, zero alloc
		for j := i; j > 0 && parts[j].slot < parts[j-1].slot; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	a.srcs = a.srcs[:0]
	partNNZ := 0
	for _, p := range parts {
		a.srcs = append(a.srcs, &p.upd)
		partNNZ += p.upd.NNZ()
	}
	a.merger.MergeInto(&a.merged, a.srcs)
	a.upFrame = sparse.AppendEncode(a.upFrame[:0], &a.merged)
	a.mu.Lock()
	a.stats.PartNNZ += uint64(partNNZ)
	a.stats.MergedNNZ += uint64(a.merged.NNZ())
	a.mu.Unlock()

	if a.up == nil {
		a.up = a.newUpstream()
	}
	// Submit copies the frame into the session's slot buffer, so upFrame is
	// free for the next window immediately.
	if err := a.up.Submit(a.cfg.UpstreamWorker, a.upFrame); err != nil {
		a.recover(append(a.inflight, w), err)
		return
	}
	a.inflight = append(a.inflight, w)
}

func (a *Aggregator) newUpstream() *transport.PipelinedSession {
	up := transport.NewPipelinedSession(a.cfg.Dial, a.cfg.Depth)
	if a.cfg.MaxRetries > 0 {
		up.MaxRetries = a.cfg.MaxRetries
	}
	if a.cfg.Backoff > 0 {
		up.Backoff = a.cfg.Backoff
	}
	if a.cfg.MaxBackoff > 0 {
		up.MaxBackoff = a.cfg.MaxBackoff
	}
	return up
}

// completeOldest finishes the oldest in-flight window: apply the upstream
// diff to the mirror once, then gather and answer every contributor.
func (a *Aggregator) completeOldest() {
	w := a.inflight[0]
	body, err := a.up.Await()
	if err != nil {
		a.recover(a.inflight, err)
		return
	}
	n := copy(a.inflight, a.inflight[1:])
	a.inflight = a.inflight[:n]
	if err := sparse.DecodeAnyInto(&a.down, body); err != nil {
		a.recover(append([]*window{w}, a.inflight...), err)
		return
	}

	// One write-lock acquisition for the whole window, however many
	// workers contributed.
	a.loc.ApplyDiff(&a.down)

	// Fan out: compute each contributor's diff against the refreshed mirror.
	// Workers sharing a downward fingerprint (same horizon, residual-clean)
	// provably hold bitwise-identical v_k and so would gather bitwise-
	// identical diffs — the first such worker's gather is cached (encoded
	// frame + decoded update) and every later match skips both the dirty-
	// block scan (ApplyGathered folds the cached update, O(nnz)) and the
	// encode (memcpy of the cached frame). The cache is valid for this
	// window only: this goroutine is the mirror's sole writer, so the
	// timestamp the cached gather observed cannot move under us.
	shared, encoded := uint64(0), uint64(0)
	a.shareOK = false
	for _, p := range w.parts {
		preH, preClean := a.loc.DownHorizon(p.slot)
		if preClean && a.shareOK && preH == a.shareH {
			a.loc.ApplyGathered(p.slot, &a.shareUpd, a.shareT)
			p.resp = append(p.resp[:0], a.shareBuf...)
			shared++
		} else {
			G, tSeen := a.loc.Gather(p.slot)
			p.resp = sparse.AppendEncode(p.resp[:0], &G)
			encoded++
			if preClean {
				// G aliases this slot's gather scratch; later iterations only
				// touch other slots' scratch, so holding the slice headers for
				// the rest of the window is safe and copy-free.
				a.shareUpd = G
				a.shareBuf = append(a.shareBuf[:0], p.resp...)
				a.shareH, a.shareT = preH, tSeen
				a.shareOK = true
			}
		}
		p.err = nil
		p.ready <- struct{}{}
	}
	a.mu.Lock()
	a.stats.SharedFrames += shared
	a.stats.EncodedFrames += encoded
	a.mu.Unlock()
	amet.shared.Add(shared)
	amet.encoded.Add(encoded)
}

func (a *Aggregator) failWindow(w *window, cause error) {
	for _, p := range w.parts {
		p.err = cause
		p.ready <- struct{}{}
	}
}

// recover handles a terminal upstream failure: the fate of every in-flight
// window is unknown and the mirror no longer provably matches the
// upstream's v_agg, so both sides reset. Windows whose pushes did commit
// upstream are still failed — their workers rejoin and resync onto a
// snapshot that already includes those pushes, so nothing is lost or
// double-applied; the uncommitted ones die with their incarnations (the
// same accepted loss as a parameter-server crash).
func (a *Aggregator) recover(failed []*window, cause error) {
	if a.up != nil {
		a.up.Close()
		a.up = nil
	}
	a.mu.Lock()
	a.upGen++
	a.stats.UpstreamResets++
	// Everything queued behind the failure is stale too: drain the channel
	// and the filling window so their workers fail fast and rejoin.
	for {
		select {
		case w := <-a.windows:
			failed = append(failed, w)
			continue
		default:
		}
		break
	}
	if a.cur != nil {
		w := a.cur
		w.flushed = true
		if w.timer != nil {
			w.timer.Stop()
		}
		a.cur = nil
		failed = append(failed, w)
	}
	// Fresh mirror, paired with the fresh upstream incarnation the next
	// submit dials: the new session's hello makes the upstream resync
	// v_agg to zero, and its first downward diff — dense M against that
	// zero — rebuilds this mirror in one apply, so mirror == v_agg holds
	// from the first exchange of the new generation.
	a.loc = ps.NewServer(a.mirrorConfig())
	a.mu.Unlock()
	amet.resets.Inc()

	err := &errUpstream{cause: cause}
	for _, w := range failed {
		a.failWindow(w, err)
	}
	a.inflight = a.inflight[:0]
	// Fence every downstream session: established workers see a new
	// incarnation, surface ErrServerRestarted, and rejoin through the
	// hello → resync path (which stamps the new joinGen).
	a.eo.Reset()
	if a.cfg.Backoff > 0 {
		// Breathe between resets so a hard-down upstream doesn't hot-loop.
		time.Sleep(a.cfg.Backoff)
	}
}

// Close drains gracefully: stop admitting, flush the filling window,
// complete every in-flight window upstream, release the link.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	if a.cur != nil && !a.cur.flushed {
		a.flushLocked(a.cur)
	}
	close(a.windows)
	a.mu.Unlock()
	<-a.done
	return nil
}

// Kill simulates a crash for chaos tests: every queued and in-flight
// exchange fails immediately and nothing more is forwarded upstream.
func (a *Aggregator) Kill() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return
	}
	a.closed, a.killed = true, true
	var failed []*window
	if a.cur != nil && !a.cur.flushed {
		w := a.cur
		w.flushed = true
		if w.timer != nil {
			w.timer.Stop()
		}
		a.cur = nil
		failed = append(failed, w)
	}
	close(a.windows)
	a.mu.Unlock()
	for _, w := range failed {
		a.failWindow(w, ErrClosed)
	}
	<-a.done
}

var amet = struct {
	windows *telemetry.Counter
	parts   *telemetry.Counter
	shared  *telemetry.Counter
	encoded *telemetry.Counter
	resets  *telemetry.Counter
}{}

func init() {
	reg := telemetry.Default()
	amet.windows = reg.Counter("dgs_agg_windows_total",
		"Aggregation windows forwarded upstream as merged pushes.")
	amet.parts = reg.Counter("dgs_agg_parts_total",
		"Worker pushes merged into aggregation windows.")
	amet.shared = reg.Counter("dgs_agg_shared_frames_total",
		"Downward frames served from the encode-once share cache.")
	amet.encoded = reg.Counter("dgs_agg_encoded_frames_total",
		"Downward frames encoded fresh.")
	amet.resets = reg.Counter("dgs_agg_upstream_resets_total",
		"Mirror rebuilds after upstream restarts or terminal failures.")
}

package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a scale.
type Runner func(Scale) (*Report, error)

// Registry maps paper artefact ids to their runners.
var Registry = map[string]Runner{
	"figure2":   Figure2,
	"figure3":   Figure3,
	"figure4":   Figure4,
	"figure5":   Figure5,
	"figure6":   Figure6,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"table5":    Table5,
	"memory":    MemoryUsage,
	"ablations": Ablations,
	"syncasync": SyncAsync,
}

// IDs returns the registered experiment names, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run looks up and executes one experiment.
func Run(id string, s Scale) (*Report, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(s)
}

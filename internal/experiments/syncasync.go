package experiments

import (
	"fmt"
	"strings"

	"dgs/internal/nn"
	"dgs/internal/ssgd"
	"dgs/internal/stats"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
)

// SyncAsync demonstrates the paper's motivating observation (§1, §3):
// Top-k sparsifiers were designed for synchronous training, where the
// barrier keeps a single model version and the aggregated broadcast stays
// sparse. Removing the barrier costs accuracy (staleness) and, without
// model-difference tracking, the downward channel becomes a dense model
// download. DGS recovers both: async speed with sparse dual-way traffic
// and SAMomentum's accuracy.
func SyncAsync(s Scale) (*Report, error) {
	p := cifarPreset(s)
	title := "Sync vs async: GD/DGC in their native setting vs the async variants vs DGS"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	values := map[string]float64{}
	tbl := stats.NewTable("Method", "Mode", "Top-1 Accuracy", "Up B/iter", "Down B/iter")

	// Synchronous rows. Per-worker batch stays p.batch; 4 workers.
	for _, m := range []ssgd.Method{ssgd.SSGD, ssgd.GD, ssgd.DGC} {
		res, err := ssgd.Run(ssgd.Config{
			Method: m, Workers: 4, BatchSize: p.batch, Epochs: p.epochs,
			LR: p.lr, LRDecayAt: []int{p.epochs * 6 / 10, p.epochs * 8 / 10},
			Momentum: p.momentum, KeepRatio: p.keepRatio, Seed: 1,
			BuildModel: func(rng *tensor.RNG) *nn.Model { return nn.NewResNetS(rng, p.model) },
			Dataset:    p.ds, EvalLimit: 512,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sync %s: %w", m, err)
		}
		tbl.AddRow(m.String(), "sync", fmt.Sprintf("%.2f%%", 100*res.FinalAccuracy),
			fmt.Sprintf("%.0f", res.AvgUpBytes), fmt.Sprintf("%.0f", res.AvgDownBytes))
		values["acc_sync_"+m.String()] = res.FinalAccuracy
		values["upbytes_sync_"+m.String()] = res.AvgUpBytes
		values["downbytes_sync_"+m.String()] = res.AvgDownBytes
	}

	// Asynchronous rows.
	for _, m := range []trainer.Method{trainer.ASGD, trainer.GDAsync, trainer.DGCAsync, trainer.DGS} {
		res, err := trainer.Run(p.runConfig(m, 4, p.batch, 1))
		if err != nil {
			return nil, fmt.Errorf("experiments: async %s: %w", m, err)
		}
		tbl.AddRow(m.String(), "async", fmt.Sprintf("%.2f%%", 100*res.FinalAccuracy),
			fmt.Sprintf("%.0f", res.AvgUpBytes), fmt.Sprintf("%.0f", res.AvgDownBytes))
		values["acc_async_"+m.String()] = res.FinalAccuracy
		values["upbytes_async_"+m.String()] = res.AvgUpBytes
		values["downbytes_async_"+m.String()] = res.AvgDownBytes
	}
	b.WriteString(tbl.String())
	b.WriteString("\nThe sync rows have no staleness but pay a barrier every step; the async\n")
	b.WriteString("rows trade staleness for wait-free workers. DGS keeps the async rows'\n")
	b.WriteString("traffic sparse in both directions while holding accuracy.\n")
	return &Report{ID: "syncasync", Title: title, Text: b.String(), Values: values}, nil
}

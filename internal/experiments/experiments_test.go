package experiments

import (
	"strings"
	"testing"

	"dgs/internal/stats"
)

// The full experiment runners take minutes of training and are exercised by
// the repository-root benchmark harness (bench_test.go); unit tests here
// cover the cheap pieces: registry, report plumbing, smoothing, presets.

func TestRegistryHasEveryPaperArtefact(t *testing.T) {
	want := []string{
		"figure2", "figure3", "figure4", "figure5", "figure6",
		"table2", "table3", "table4", "table5", "memory", "ablations", "syncasync",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("figure99", Short); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestTable5Renders(t *testing.T) {
	rep, err := Run("table5", Short)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"ASGD", "GD-async", "DGC-async", "DGS", "SAMomentum"} {
		if !strings.Contains(rep.Text, method) {
			t.Errorf("table 5 missing %q", method)
		}
	}
	if rep.ID != "table5" {
		t.Fatalf("ID = %q", rep.ID)
	}
}

func TestSmoothedMovingAverage(t *testing.T) {
	s := stats.NewSeries("x")
	for i := 0; i < 6; i++ {
		s.Add(float64(i), float64(i))
	}
	sm := smoothed(s, 3)
	pts := sm.Points()
	// Point 0: mean(0)=0; point 2: mean(0,1,2)=1; point 5: mean(3,4,5)=4.
	if pts[0].Y != 0 || pts[2].Y != 1 || pts[5].Y != 4 {
		t.Fatalf("smoothed values wrong: %+v", pts)
	}
	if sm.Len() != s.Len() {
		t.Fatal("smoothing must preserve sample count")
	}
}

func TestSmoothedDegenerateWindow(t *testing.T) {
	s := stats.NewSeries("x")
	s.Add(0, 2)
	sm := smoothed(s, 0) // clamped to 1
	if sm.Points()[0].Y != 2 {
		t.Fatal("window<1 must behave as identity")
	}
}

func TestPresetsGeometry(t *testing.T) {
	for _, s := range []Scale{Short, Full} {
		c := cifarPreset(s)
		if c.ds.Classes() != 10 {
			t.Fatalf("cifar preset classes %d", c.ds.Classes())
		}
		if c.model.Classes != 10 {
			t.Fatal("model classes must match dataset")
		}
		i := imagenetPreset(s)
		if i.model.Classes != i.ds.Classes() {
			t.Fatal("imagenet model/dataset class mismatch")
		}
		if i.ds.Classes() <= c.ds.Classes() {
			t.Fatal("imagenet-like must have more classes than cifar-like")
		}
	}
	// Full scale must be strictly bigger.
	if cifarPreset(Full).ds.NumTrain() <= cifarPreset(Short).ds.NumTrain() {
		t.Fatal("full scale should enlarge the training set")
	}
}

func TestTable3WorkerSweep(t *testing.T) {
	short := table3Workers(Short)
	full := table3Workers(Full)
	if short[0] != 1 || full[len(full)-1] != 32 {
		t.Fatalf("sweeps wrong: %v %v", short, full)
	}
	if len(full) <= len(short) {
		t.Fatal("full sweep must extend the short sweep")
	}
}

func TestResNet18Constants(t *testing.T) {
	// 11.7M float32 params ≈ 46 MB: the paper's model footprint.
	if b := ResNet18Params * 4; b < 45e6 || b > 48e6 {
		t.Fatalf("ResNet-18 bytes %d outside the paper's ~46 MB", b)
	}
}

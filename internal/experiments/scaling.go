package experiments

import (
	"fmt"
	"strings"

	"dgs/internal/stats"
	"dgs/internal/trainer"
)

// table3Workers returns the worker counts for the CIFAR scaling sweep.
func table3Workers(s Scale) []int {
	if s == Short {
		return []int{1, 4, 8}
	}
	return []int{1, 4, 8, 16, 32}
}

// Table3 reproduces the CIFAR scaling study: worker counts with the total
// batch held constant (per-worker batch = refBatch / N), all methods, plus
// the paper's §5.4 momentum ablation (m=0.3 at the largest scale, which
// the paper found *improves* DGS accuracy to 93.7%).
func Table3(s Scale) (*Report, error) {
	p := cifarPreset(s)
	title := "Table 3: CIFAR-like scaling (total batch fixed, batch/worker = total/N)"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	tbl := stats.NewTable("Workers", "Batch/worker", "Method", "Top-1 Accuracy", "Δ vs MSGD")
	values := map[string]float64{}

	// Baseline: single-node MSGD at the full batch.
	msgdCfg := p.runConfig(trainer.MSGD, 1, p.refBatch, 1)
	msgd, err := trainer.Run(msgdCfg)
	if err != nil {
		return nil, err
	}
	base := msgd.FinalAccuracy
	tbl.AddRow("1", fmt.Sprint(p.refBatch), "MSGD", fmt.Sprintf("%.2f%%", 100*base), "-")
	values["acc_1_MSGD"] = base

	asyncMethods := []trainer.Method{trainer.ASGD, trainer.GDAsync, trainer.DGCAsync, trainer.DGS}
	for _, workers := range table3Workers(s) {
		if workers == 1 {
			continue
		}
		batch := p.refBatch / workers
		if batch < 1 {
			batch = 1
		}
		for _, m := range asyncMethods {
			cfg := p.runConfig(m, workers, batch, 1)
			res, err := trainer.Run(cfg)
			if err != nil {
				return nil, err
			}
			key := fmt.Sprintf("acc_%d_%s", workers, m)
			values[key] = res.FinalAccuracy
			tbl.AddRow(fmt.Sprint(workers), fmt.Sprint(batch), m.String(),
				fmt.Sprintf("%.2f%%", 100*res.FinalAccuracy),
				fmt.Sprintf("%+.2f%%", 100*(res.FinalAccuracy-base)))
		}
	}
	b.WriteString(tbl.String())

	// §5.4 momentum ablation at the largest scale.
	largest := table3Workers(s)[len(table3Workers(s))-1]
	batch := p.refBatch / largest
	if batch < 1 {
		batch = 1
	}
	abl := p.runConfig(trainer.DGS, largest, batch, 1)
	abl.Momentum = 0.3
	ablRes, err := trainer.Run(abl)
	if err != nil {
		return nil, err
	}
	values[fmt.Sprintf("acc_%d_DGS_m0.3", largest)] = ablRes.FinalAccuracy
	fmt.Fprintf(&b, "\n§5.4 ablation: DGS with momentum 0.3 at %d workers: %.2f%% (m=0.7 gave %.2f%%)\n",
		largest, 100*ablRes.FinalAccuracy, 100*values[fmt.Sprintf("acc_%d_DGS", largest)])
	return &Report{ID: "table3", Title: title, Text: b.String(), Values: values}, nil
}

// Table4 reproduces the ImageNet scaling rows (4 and 16 workers).
func Table4(s Scale) (*Report, error) {
	p := imagenetPreset(s)
	title := "Table 4: ImageNet-like scaling"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	tbl := stats.NewTable("Workers", "Method", "Top-1 Accuracy", "Δ vs MSGD")
	values := map[string]float64{}

	msgd, err := trainer.Run(p.runConfig(trainer.MSGD, 1, p.batch, 1))
	if err != nil {
		return nil, err
	}
	base := msgd.FinalAccuracy
	tbl.AddRow("1", "MSGD", fmt.Sprintf("%.2f%%", 100*base), "-")
	values["acc_1_MSGD"] = base

	asyncMethods := []trainer.Method{trainer.ASGD, trainer.GDAsync, trainer.DGCAsync, trainer.DGS}
	for _, workers := range []int{4, 16} {
		mom := p.momentum
		if workers == 16 {
			mom = 0.45 // the paper lowers momentum at 16 workers
		}
		for _, m := range asyncMethods {
			cfg := p.runConfig(m, workers, p.batch, 1)
			cfg.Momentum = mom
			res, err := trainer.Run(cfg)
			if err != nil {
				return nil, err
			}
			values[fmt.Sprintf("acc_%d_%s", workers, m)] = res.FinalAccuracy
			tbl.AddRow(fmt.Sprint(workers), m.String(),
				fmt.Sprintf("%.2f%%", 100*res.FinalAccuracy),
				fmt.Sprintf("%+.2f%%", 100*(res.FinalAccuracy-base)))
		}
	}
	b.WriteString(tbl.String())
	return &Report{ID: "table4", Title: title, Text: b.String(), Values: values}, nil
}

// Table5 renders the qualitative technique matrix.
func Table5(Scale) (*Report, error) {
	title := "Table 5: techniques in each method"
	tbl := stats.NewTable("Method", "Sparsification", "Momentum", "Momentum correction", "Residual accumulation")
	tbl.AddRow("ASGD", "none", "none", "no", "no")
	tbl.AddRow("GD", "Top-k upward", "none", "no", "yes (worker residual)")
	tbl.AddRow("DGC", "Top-k upward", "vanilla", "yes (+factor masking)", "yes (worker velocity)")
	tbl.AddRow("GD-async", "dual-way (model difference)", "none", "no", "yes")
	tbl.AddRow("DGC-async", "dual-way (model difference)", "vanilla", "yes (+factor masking)", "yes")
	tbl.AddRow("DGS", "dual-way (model difference)", "SAMomentum", "not needed", "not needed")
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n%s", title, strings.Repeat("=", len(title)), tbl.String())
	return &Report{ID: "table5", Title: title, Text: b.String(), Values: map[string]float64{}}, nil
}

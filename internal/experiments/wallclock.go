package experiments

import (
	"fmt"
	"strings"

	"dgs/internal/netsim"
	"dgs/internal/stats"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
)

// messageProfile captures the measured communication behaviour of one
// method: encoded bytes per parameter in each direction. The profile is
// measured from real runs of our implementation and then scaled to the
// paper's ResNet-18 parameter count, restoring the paper's
// compute/communication balance while keeping our measured compression
// ratios (see DESIGN.md §2).
type messageProfile struct {
	method        trainer.Method
	upPerParam    float64 // bytes per model parameter, upward
	downPerParam  float64 // bytes per model parameter, downward
	lossCurve     *stats.Series
	itersMeasured int
	modelParams   int
}

// measureProfile runs a short real training to extract the wire profile.
func measureProfile(p imagePreset, m trainer.Method, workers int, secondary bool) (*messageProfile, error) {
	cfg := p.runConfig(m, workers, p.batch, 1)
	if secondary && m != trainer.ASGD && m != trainer.MSGD {
		cfg.Secondary = true
		cfg.SecondaryRatio = p.keepRatio
	}
	res, err := trainer.Run(cfg)
	if err != nil {
		return nil, err
	}
	nParams := cfg.BuildModel(tensor.NewRNG(1)).NumParams()
	return &messageProfile{
		method:        m,
		upPerParam:    res.AvgUpBytes / float64(nParams),
		downPerParam:  res.AvgDownBytes / float64(nParams),
		lossCurve:     res.Loss,
		itersMeasured: res.Iterations,
		modelParams:   nParams,
	}, nil
}

// simulate runs the network simulator with a profile scaled to ResNet-18.
func simulate(prof *messageProfile, workers int, bandwidthBps float64, iterations int) netsim.Result {
	up := prof.upPerParam * ResNet18Params
	down := prof.downPerParam * ResNet18Params
	return netsim.Run(netsim.Config{
		Workers:       workers,
		ComputeTime:   paperComputeSeconds,
		ComputeJitter: 0.1,
		BandwidthBps:  bandwidthBps,
		LatencyS:      100e-6,
		ServerTimeS:   5e-3,
		UpBytes:       func(int) float64 { return up },
		DownBytes:     func(int) float64 { return down },
		Iterations:    iterations,
		Seed:          7,
	})
}

// Figure5 reproduces training-loss-vs-wall-clock at 8 workers over 1 Gbps:
// DGS (with secondary compression, as the paper's low-bandwidth setting
// uses) against ASGD. Loss curves come from real training; iteration
// timestamps come from the simulator driven by measured message sizes.
func Figure5(s Scale) (*Report, error) {
	p := cifarPreset(s)
	dgsProf, err := measureProfile(p, trainer.DGS, 8, true)
	if err != nil {
		return nil, err
	}
	asgdProf, err := measureProfile(p, trainer.ASGD, 8, false)
	if err != nil {
		return nil, err
	}

	title := "Figure 5: training loss vs wall-clock, 8 workers, 1 Gbps"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	values := map[string]float64{}
	series := make([]*stats.Series, 0, 2)
	var times [2]float64
	for i, prof := range []*messageProfile{dgsProf, asgdProf} {
		sim := simulate(prof, 8, netsim.Gbps(1), prof.itersMeasured)
		// Map the i-th completed iteration to its simulated finish time.
		pts := smoothed(prof.lossCurve, 25).Points()
		sr := stats.NewSeries(prof.method.String())
		for j, pt := range pts {
			if j < len(sim.IterDoneTimes) {
				sr.Add(sim.IterDoneTimes[j]/60, pt.Y) // minutes
			}
		}
		series = append(series, sr)
		times[i] = sim.TotalTime / 60
		values["minutes_"+prof.method.String()] = times[i]
		values["upPerParam_"+prof.method.String()] = prof.upPerParam
		values["downPerParam_"+prof.method.String()] = prof.downPerParam
	}
	b.WriteString("Training loss vs minutes (simulated 1 Gbps link, ResNet-18-scale messages):\n")
	b.WriteString(stats.AsciiPlot(72, 18, series...))
	speedup := times[1] / times[0]
	values["speedup"] = speedup
	fmt.Fprintf(&b, "\nDGS completes in %.0f min vs ASGD %.0f min: %.1fx speedup (paper: 88 vs 506 min, 5.7x)\n",
		times[0], times[1], speedup)
	figures := map[string]string{}
	var svg strings.Builder
	if err := stats.WriteSVG(&svg, stats.SVGOptions{Title: title, XLabel: "minutes", YLabel: "training loss"}, series...); err == nil {
		figures["figure5.svg"] = svg.String()
	}
	return &Report{ID: "figure5", Title: title, Text: b.String(), Values: values, Figures: figures}, nil
}

// figure6Workers returns the sweep points.
func figure6Workers(s Scale) []int {
	if s == Short {
		return []int{1, 4, 8, 16}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// Figure6 reproduces the speedup-vs-workers curves for DGS and ASGD at
// 10 Gbps and 1 Gbps.
func Figure6(s Scale) (*Report, error) {
	p := cifarPreset(s)
	// Measure message profiles once per method from short real runs.
	profCfg := p
	if s == Full {
		// The wire profile does not need long training; reuse Short here.
		profCfg = cifarPreset(Short)
	}
	dgsProf, err := measureProfile(profCfg, trainer.DGS, 4, true)
	if err != nil {
		return nil, err
	}
	asgdProf, err := measureProfile(profCfg, trainer.ASGD, 4, false)
	if err != nil {
		return nil, err
	}

	title := "Figure 6: speedup vs workers at 10 Gbps and 1 Gbps"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	tbl := stats.NewTable("Workers", "ASGD 10Gbps", "DGS 10Gbps", "ASGD 1Gbps", "DGS 1Gbps")
	values := map[string]float64{}
	var plotSeries []*stats.Series
	names := []string{"ASGD-10G", "DGS-10G", "ASGD-1G", "DGS-1G"}
	for _, n := range names {
		plotSeries = append(plotSeries, stats.NewSeries(n))
	}
	for _, workers := range figure6Workers(s) {
		iters := 40 * workers
		cells := []string{fmt.Sprint(workers)}
		for i, combo := range []struct {
			prof *messageProfile
			bw   float64
		}{
			{asgdProf, netsim.Gbps(10)},
			{dgsProf, netsim.Gbps(10)},
			{asgdProf, netsim.Gbps(1)},
			{dgsProf, netsim.Gbps(1)},
		} {
			sim := simulate(combo.prof, workers, combo.bw, iters)
			sp := netsim.Speedup(&sim, paperComputeSeconds)
			cells = append(cells, fmt.Sprintf("%.2fx", sp))
			key := fmt.Sprintf("speedup_%s_%dw", names[i], workers)
			values[key] = sp
			plotSeries[i].Add(float64(workers), sp)
		}
		tbl.AddRow(cells...)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nSpeedup vs workers:\n")
	b.WriteString(stats.AsciiPlot(72, 18, plotSeries...))
	figures := map[string]string{}
	var svg strings.Builder
	if err := stats.WriteSVG(&svg, stats.SVGOptions{Title: title, XLabel: "workers", YLabel: "speedup"}, plotSeries...); err == nil {
		figures["figure6.svg"] = svg.String()
	}
	return &Report{ID: "figure6", Title: title, Text: b.String(), Values: values, Figures: figures}, nil
}

// MemoryUsage reproduces §5.6.2: server overhead is one v_k per worker;
// DGS moves the worker-side residual/velocity budget to a single buffer.
func MemoryUsage(s Scale) (*Report, error) {
	p := cifarPreset(s)
	title := "§5.6.2: memory usage"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	values := map[string]float64{}

	// Real measurements on our model.
	tbl := stats.NewTable("Method", "Worker optimizer state", "Server state (4 workers)")
	for _, m := range []trainer.Method{trainer.ASGD, trainer.GDAsync, trainer.DGCAsync, trainer.DGS} {
		cfg := p.runConfig(m, 4, p.batch, 1)
		cfg.Epochs = 1
		res, err := trainer.Run(cfg)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(m.String(),
			fmt.Sprintf("%d B", res.WorkerStateBytes),
			fmt.Sprintf("%d B", res.ServerStateBytes))
		values["worker_bytes_"+m.String()] = float64(res.WorkerStateBytes)
		values["server_bytes_"+m.String()] = float64(res.ServerStateBytes)
	}
	b.WriteString(tbl.String())

	// Paper-scale projection: ResNet-18 is ~46 MB; a 16 GB card hosting
	// the server can hold M plus one v_k per worker.
	const resnet18Bytes = 46e6
	const cardBytes = 16e9
	workersSupported := (cardBytes - resnet18Bytes) / resnet18Bytes
	values["resnet18_workers_on_16GB"] = workersSupported
	fmt.Fprintf(&b, "\nProjection at ResNet-18 scale (46 MB of parameters):\n")
	fmt.Fprintf(&b, "  server overhead = workers x 46 MB; a 16 GB card supports ~%.0f workers (paper: \"more than 300\")\n", workersSupported)
	return &Report{ID: "memory", Title: title, Text: b.String(), Values: values}, nil
}

package experiments

import (
	"fmt"
	"strings"

	"dgs/internal/stats"
	"dgs/internal/trainer"
)

// Ablations exercises the design choices DESIGN.md calls out beyond the
// paper's headline tables:
//
//   - DGS + TernGrad-style ternary quantization of the sparse values
//     (the paper's §6 future-work combination);
//   - secondary-compression ratio sweep (bandwidth knob of §4.2.2);
//   - keep-ratio sweep (R = 1%, 5%, 25%).
func Ablations(s Scale) (*Report, error) {
	p := cifarPreset(s)
	title := "Ablations: ternary combination, secondary ratio, keep ratio"
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	values := map[string]float64{}

	run := func(label string, mutate func(*trainer.Config)) (*trainer.Result, error) {
		cfg := p.runConfig(trainer.DGS, 4, p.batch, 1)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := trainer.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", label, err)
		}
		values["acc_"+label] = res.FinalAccuracy
		values["upbytes_"+label] = res.AvgUpBytes
		values["downbytes_"+label] = res.AvgDownBytes
		return res, nil
	}

	tbl := stats.NewTable("Variant", "Top-1 Accuracy", "Up B/iter", "Down B/iter")
	addRow := func(label string, res *trainer.Result) {
		tbl.AddRow(label, fmt.Sprintf("%.2f%%", 100*res.FinalAccuracy),
			fmt.Sprintf("%.0f", res.AvgUpBytes), fmt.Sprintf("%.0f", res.AvgDownBytes))
	}

	base, err := run("dgs", nil)
	if err != nil {
		return nil, err
	}
	addRow("DGS (R=1%)", base)

	tern, err := run("dgs+ternary", func(c *trainer.Config) { c.Ternary = true })
	if err != nil {
		return nil, err
	}
	addRow("DGS + ternary values", tern)

	for _, ratio := range []float64{0.01, 0.05} {
		ratio := ratio
		label := fmt.Sprintf("dgs+secondary%.2f", ratio)
		res, err := run(label, func(c *trainer.Config) {
			c.Secondary = true
			c.SecondaryRatio = ratio
		})
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("DGS + secondary (keep %.0f%%)", 100*ratio), res)
	}

	for _, keep := range []float64{0.05, 0.25} {
		keep := keep
		label := fmt.Sprintf("dgs+keep%.2f", keep)
		res, err := run(label, func(c *trainer.Config) { c.KeepRatio = keep })
		if err != nil {
			return nil, err
		}
		addRow(fmt.Sprintf("DGS, R=%.0f%%", 100*keep), res)
	}

	b.WriteString(tbl.String())
	b.WriteString("\nTernary quantization shrinks upward bytes further at a small accuracy cost;\n")
	b.WriteString("secondary compression bounds downward traffic; larger R trades bytes for\n")
	b.WriteString("faster per-coordinate information flow.\n")
	return &Report{ID: "ablations", Title: title, Text: b.String(), Values: values}, nil
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment returns a Report containing rendered
// text (tables and ASCII learning curves) plus a Values map of the key
// numbers, which the benchmark harness asserts shape properties on and
// EXPERIMENTS.md records.
//
// Two scales are provided: Short (CI-friendly, minutes of CPU) and Full
// (closer to the paper's epoch counts; tens of minutes). Absolute
// accuracies belong to our synthetic substrate — the reproduction targets
// are the paper's orderings, gaps and crossovers.
package experiments

import (
	"fmt"
	"strings"

	"dgs/internal/data"
	"dgs/internal/nn"
	"dgs/internal/stats"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
)

// Scale selects experiment fidelity.
type Scale int

// Short is CI scale; Full approaches the paper's epoch counts.
const (
	Short Scale = iota
	Full
)

// Report is one experiment's output.
type Report struct {
	// ID is the paper artefact name, e.g. "figure2" or "table3".
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered report (tables, ASCII plots).
	Text string
	// Values holds the key metrics by name.
	Values map[string]float64
	// Figures maps file names (e.g. "loss.svg") to rendered SVG documents
	// for experiments that produce charts.
	Figures map[string]string
}

// ResNet18Params is the reference parameter count the paper's wall-clock
// experiments are built around (ResNet-18, ~46 MB of float32 weights).
const ResNet18Params = 11_700_000

// paperComputeSeconds approximates one V100 forward+backward on ResNet-18
// at batch 256 — the per-iteration compute the paper's cluster overlapped
// with communication.
const paperComputeSeconds = 0.3

// imagePreset bundles the dataset/model/training geometry for the
// accuracy experiments.
type imagePreset struct {
	ds        data.Dataset
	model     nn.ResNetSConfig
	batch     int // per-worker batch at the 4-worker reference point
	refBatch  int // total batch (Table 3 divides this by the worker count)
	epochs    int
	lr        float32
	momentum  float32
	keepRatio float64
}

// cifarPreset is the Cifar10 stand-in setup.
func cifarPreset(s Scale) imagePreset {
	cfg := data.CIFARLike(1)
	cfg.Noise = 0.7
	// 12 epochs at batch 8 give ~3000 iterations: enough for each top-1%
	// coordinate to fire ~30 times, which the sparse methods need before
	// their orderings stabilise (see DESIGN.md).
	epochs := 12
	if s == Short {
		cfg.Train, cfg.Test = 2048, 512
	} else {
		cfg.Train, cfg.Test = 4096, 1024
		epochs = 20
	}
	return imagePreset{
		ds:        data.NewSyntheticImages(cfg),
		model:     nn.DefaultResNetS(cfg.Classes),
		batch:     8,
		refBatch:  32,
		epochs:    epochs,
		lr:        0.1,
		momentum:  0.7,
		keepRatio: 0.01,
	}
}

// imagenetPreset is the ImageNet stand-in: more classes, larger inputs.
func imagenetPreset(s Scale) imagePreset {
	cfg := data.ImageNetLike(2)
	epochs := 8
	if s == Short {
		cfg.H, cfg.W = 20, 20
		cfg.Classes = 25
		cfg.Train, cfg.Test = 2048, 512
	} else {
		cfg.Train, cfg.Test = 8192, 1024
		epochs = 12
	}
	model := nn.ResNetSConfig{
		InC: cfg.C, H: cfg.H, W: cfg.W,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: cfg.Classes,
	}
	return imagePreset{
		ds:        data.NewSyntheticImages(cfg),
		model:     model,
		batch:     8,
		refBatch:  32,
		epochs:    epochs,
		lr:        0.1,
		momentum:  0.7,
		keepRatio: 0.01,
	}
}

// runConfig builds a trainer config from a preset.
func (p imagePreset) runConfig(m trainer.Method, workers, batch int, seed uint64) trainer.Config {
	model := p.model
	return trainer.Config{
		Method:    m,
		Workers:   workers,
		BatchSize: batch,
		Epochs:    p.epochs,
		LR:        p.lr,
		LRDecayAt: []int{p.epochs * 6 / 10, p.epochs * 8 / 10},
		Momentum:  p.momentum,
		KeepRatio: p.keepRatio,
		Seed:      seed,
		Dataset:   p.ds,
		EvalLimit: 512,
		BuildModel: func(rng *tensor.RNG) *nn.Model {
			return nn.NewResNetS(rng, model)
		},
	}
}

// runMethods executes the given methods on a preset with shared settings.
func runMethods(p imagePreset, workers int, methods []trainer.Method, mutate func(*trainer.Config)) ([]*trainer.Result, error) {
	out := make([]*trainer.Result, 0, len(methods))
	for _, m := range methods {
		cfg := p.runConfig(m, workers, p.batch, 1)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := trainer.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// curvesReport renders loss and accuracy plots plus a final-accuracy table.
func curvesReport(id, title string, results []*trainer.Result) *Report {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))

	lossSeries := make([]*stats.Series, len(results))
	accSeries := make([]*stats.Series, len(results))
	for i, r := range results {
		lossSeries[i] = smoothed(r.Loss, 25)
		accSeries[i] = r.Accuracy
	}
	b.WriteString("Training loss vs epoch:\n")
	b.WriteString(stats.AsciiPlot(72, 18, lossSeries...))
	b.WriteString("\nTop-1 accuracy vs epoch:\n")
	b.WriteString(stats.AsciiPlot(72, 18, accSeries...))

	tbl := stats.NewTable("Method", "Top-1 Accuracy", "Δ vs MSGD", "Avg up B/iter", "Avg down B/iter")
	values := map[string]float64{}
	var base float64
	for i, r := range results {
		if i == 0 {
			base = r.FinalAccuracy
		}
		delta := ""
		if i > 0 {
			delta = fmt.Sprintf("%+.2f%%", 100*(r.FinalAccuracy-base))
		}
		tbl.AddRow(r.Method.String(),
			fmt.Sprintf("%.2f%%", 100*r.FinalAccuracy), delta,
			fmt.Sprintf("%.0f", r.AvgUpBytes), fmt.Sprintf("%.0f", r.AvgDownBytes))
		values["acc_"+r.Method.String()] = r.FinalAccuracy
		values["upbytes_"+r.Method.String()] = r.AvgUpBytes
		values["downbytes_"+r.Method.String()] = r.AvgDownBytes
	}
	b.WriteString("\n")
	b.WriteString(tbl.String())

	figures := map[string]string{}
	var lossSVG, accSVG strings.Builder
	if err := stats.WriteSVG(&lossSVG, stats.SVGOptions{Title: title + " — training loss", XLabel: "epoch", YLabel: "loss"}, lossSeries...); err == nil {
		figures[id+"-loss.svg"] = lossSVG.String()
	}
	if err := stats.WriteSVG(&accSVG, stats.SVGOptions{Title: title + " — top-1 accuracy", XLabel: "epoch", YLabel: "accuracy"}, accSeries...); err == nil {
		figures[id+"-acc.svg"] = accSVG.String()
	}
	return &Report{ID: id, Title: title, Text: b.String(), Values: values, Figures: figures}
}

// smoothed returns a moving-average copy of a series for readable plots.
func smoothed(s *stats.Series, window int) *stats.Series {
	pts := s.Points()
	out := stats.NewSeries(s.Name)
	if window < 1 {
		window = 1
	}
	var sum float64
	for i, p := range pts {
		sum += p.Y
		if i >= window {
			sum -= pts[i-window].Y
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out.Add(p.X, sum/float64(n))
	}
	return out
}

// Figure2 reproduces the learning curves of ResNet-18 on Cifar10 with 4
// workers: all five methods, gradient sparsity 99%.
func Figure2(s Scale) (*Report, error) {
	p := cifarPreset(s)
	results, err := runMethods(p, 4, trainer.AllMethods, nil)
	if err != nil {
		return nil, err
	}
	return curvesReport("figure2", "Figure 2: learning curves, CIFAR-like, 4 workers", results), nil
}

// Figure3 reproduces the ImageNet 4-worker learning curves.
func Figure3(s Scale) (*Report, error) {
	p := imagenetPreset(s)
	results, err := runMethods(p, 4, trainer.AllMethods, nil)
	if err != nil {
		return nil, err
	}
	return curvesReport("figure3", "Figure 3: learning curves, ImageNet-like, 4 workers", results), nil
}

// Figure4 reproduces the ImageNet 16-worker learning curves (momentum 0.45
// per the paper's large-scale setting).
func Figure4(s Scale) (*Report, error) {
	p := imagenetPreset(s)
	p.momentum = 0.45
	results, err := runMethods(p, 16, trainer.AllMethods, nil)
	if err != nil {
		return nil, err
	}
	return curvesReport("figure4", "Figure 4: learning curves, ImageNet-like, 16 workers", results), nil
}

// Table2 reports final accuracies for CIFAR-like and ImageNet-like with 4
// workers (the paper's Table 2).
func Table2(s Scale) (*Report, error) {
	var b strings.Builder
	title := "Table 2: ResNet-18 stand-in accuracy, 4 workers"
	fmt.Fprintf(&b, "%s\n%s\n\n", title, strings.Repeat("=", len(title)))
	values := map[string]float64{}
	tbl := stats.NewTable("Dataset", "Method", "Workers", "Top-1 Accuracy")
	for _, part := range []struct {
		name   string
		preset imagePreset
	}{
		{"CIFAR-like", cifarPreset(s)},
		{"ImageNet-like", imagenetPreset(s)},
	} {
		results, err := runMethods(part.preset, 4, trainer.AllMethods, nil)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			workers := "4"
			if r.Method == trainer.MSGD {
				workers = "1"
			}
			tbl.AddRow(part.name, r.Method.String(), workers, fmt.Sprintf("%.2f%%", 100*r.FinalAccuracy))
			values["acc_"+part.name+"_"+r.Method.String()] = r.FinalAccuracy
		}
	}
	b.WriteString(tbl.String())
	return &Report{ID: "table2", Title: title, Text: b.String(), Values: values}, nil
}

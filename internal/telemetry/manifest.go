package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ManifestSchema identifies the snapshot layout, so downstream tooling can
// evolve with it.
const ManifestSchema = "dgs-run-manifest/1"

// Manifest is a self-describing snapshot of a run: static configuration
// (method, worker count, keep ratio, …) set once by the embedding process,
// plus a live export of every registry metric. Periodic snapshots make the
// paper's Figure 5–7-style traffic numbers readable while a run is in
// flight instead of post-hoc from CSV dumps.
type Manifest struct {
	reg   *Registry
	start time.Time

	mu     sync.Mutex
	static map[string]any
}

// NewManifest builds a manifest over reg (nil means Default()).
func NewManifest(reg *Registry) *Manifest {
	if reg == nil {
		reg = Default()
	}
	return &Manifest{reg: reg, start: time.Now(), static: map[string]any{}}
}

// Set records one static run descriptor (e.g. "method", "workers").
func (m *Manifest) Set(key string, value any) {
	m.mu.Lock()
	m.static[key] = value
	m.mu.Unlock()
}

// Snapshot assembles the current manifest document.
func (m *Manifest) Snapshot() map[string]any {
	m.mu.Lock()
	run := make(map[string]any, len(m.static))
	for k, v := range m.static {
		run[k] = v
	}
	m.mu.Unlock()
	now := time.Now()
	return map[string]any{
		"schema":         ManifestSchema,
		"written_unix":   now.Unix(),
		"uptime_seconds": now.Sub(m.start).Seconds(),
		"run":            run,
		"metrics":        m.reg.Export(),
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}

// WriteFile atomically replaces path with the current snapshot (write to a
// temp file in the same directory, then rename), so a reader never sees a
// torn manifest.
func (m *Manifest) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*.json")
	if err != nil {
		return fmt.Errorf("telemetry: manifest temp file: %w", err)
	}
	if err := m.WriteJSON(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: manifest write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: manifest close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("telemetry: manifest rename: %w", err)
	}
	return nil
}

// StartPeriodic writes the manifest to path every interval (default 10 s
// when zero) until the returned stop function is called. Stop writes one
// final snapshot so the file always reflects the end state of the run.
// Write errors are reported once on stderr and do not stop the loop — a
// full disk must not kill training.
func (m *Manifest) StartPeriodic(path string, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		warned := false
		write := func() {
			if err := m.WriteFile(path); err != nil && !warned {
				warned = true
				fmt.Fprintln(os.Stderr, err)
			}
		}
		write() // an initial snapshot, so the file exists immediately
		for {
			select {
			case <-tick.C:
				write()
			case <-done:
				write()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsHTTPRoundTrip spins up the endpoint on an ephemeral port,
// scrapes /metrics over real HTTP, and checks the body is the registry's
// Prometheus page with the right content type.
func TestMetricsHTTPRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_pushes_total", "Pushes.", "worker", "0").Add(42)
	reg.Histogram("rt_lat", "Latency.", []float64{0.001, 0.01}).Observe(0.002)

	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`rt_pushes_total{worker="0"} 42`,
		"# TYPE rt_lat histogram",
		`rt_lat_bucket{le="0.01"} 1`,
		"rt_lat_count 1",
	} {
		if !strings.Contains(string(body), line) {
			t.Fatalf("/metrics missing %q:\n%s", line, body)
		}
	}
}

func TestHealthzAndManifestEndpoints(t *testing.T) {
	reg := NewRegistry()
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}

	// No manifest attached yet: 404.
	resp, err = http.Get(srv.URL() + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/manifest without manifest: status = %d, want 404", resp.StatusCode)
	}

	m := NewManifest(reg)
	m.Set("method", "dgs")
	m.Set("workers", 2)
	srv.SetManifest(m)
	reg.Counter("mf_ops_total", "ops").Add(3)

	resp, err = http.Get(srv.URL() + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/manifest status = %d", resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["schema"] != ManifestSchema {
		t.Fatalf("schema = %v", doc["schema"])
	}
	run, _ := doc["run"].(map[string]any)
	if run["method"] != "dgs" {
		t.Fatalf("run = %v", run)
	}
	metrics, _ := doc["metrics"].(map[string]any)
	if metrics["mf_ops_total"] != float64(3) {
		t.Fatalf("metrics = %v", metrics)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
}

package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a bounded bucketed histogram for non-negative observations
// (durations in seconds, staleness in pushes, byte counts). Buckets are
// fixed at construction — inclusive upper bounds plus an implicit +Inf
// overflow — so Observe is a bucket search plus three atomic operations
// and never allocates. Quantiles (p50/p95/p99) are estimated by linear
// interpolation within the owning bucket, the standard Prometheus
// histogram_quantile scheme.
type Histogram struct {
	bounds  []float64 // ascending inclusive upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over the given bounds (copied).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %v", bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// snapshot reads per-bucket counts, the total and the sum. Reads are not
// mutually atomic; for monitoring that slack is acceptable (the total is
// re-derived from the bucket counts so bucket/count output stays
// consistent within one render).
func (h *Histogram) snapshot() (counts []uint64, total uint64, sum float64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total, h.Sum()
}

// Quantile estimates the q-th quantile (q in [0,1]) by locating the bucket
// holding the rank and interpolating linearly between its bounds. Values
// in the +Inf overflow bucket report the largest finite bound. Returns 0
// when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := float64(0)
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns count ascending bounds starting at start and growing
// by factor: {start, start·f, start·f², …}.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns count ascending bounds {start, start+w, …}.
func LinearBuckets(start, width float64, count int) []float64 {
	if width <= 0 || count < 1 {
		panic("telemetry: LinearBuckets needs width > 0, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets covers 1 µs to ~67 s in powers of two — wide enough for
// loopback exchanges (microseconds) and chaos-test retries (seconds) in
// one layout.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 27) }

// StalenessBuckets covers 0 to 16384 pushes: an exact zero bucket (the
// synchronous case) plus powers of two.
func StalenessBuckets() []float64 {
	return append([]float64{0}, ExpBuckets(1, 2, 15)...)
}

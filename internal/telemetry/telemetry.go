// Package telemetry is the repo's dependency-free runtime metrics
// subsystem: a registry of atomic counters, gauges and bounded histograms,
// a Prometheus-text-format renderer, a stdlib-HTTP /metrics + /debug/pprof
// endpoint, and a periodic JSON run manifest so experiment runs
// self-describe their traffic.
//
// Design constraints, in order:
//
//  1. Zero dependencies — stdlib only, like the rest of the repo.
//  2. Hot-path safe — instrumented code (ps.Push, the worker exchange
//     loop, optimizer Prepare) resolves metric handles once at setup and
//     then performs only atomic operations. No update path allocates, so
//     the PR 2 zero-allocation invariants survive instrumentation.
//  3. Always-on — packages register against the Default registry at init
//     or construction time; a process that never starts the HTTP endpoint
//     pays a few atomic adds and nothing else.
//
// Metric identity is (name, label pairs). Handles are get-or-create: two
// callers asking for the same identity share one underlying metric, which
// makes cross-package wiring (ps counts pushes, trainer derives ratios)
// trivial and makes repeated construction in tests benign.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; all methods are safe for concurrent use and never allocate.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move both ways. The zero value is
// usable; all methods are safe for concurrent use and never allocate.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds v (CAS loop).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Metric type names as emitted in Prometheus TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one labelled instance of a metric family. Exactly one of the
// value fields is set, matching the family type (fn is a gauge read at
// collection time).
type child struct {
	labels  string // rendered `k="v",k2="v2"` (no braces), "" when unlabelled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family groups all children sharing one metric name.
type family struct {
	name, help, typ string
	children        map[string]*child
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry, or use Default for the process-wide instance every
// instrumented package feeds.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry (tests use this to assert exact
// values without cross-talk from the process-wide instrumentation).
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that instrumented packages
// (ps, transport, trainer, optim) register against and that the HTTP
// endpoint serves by default.
func Default() *Registry { return defaultRegistry }

// renderLabels turns alternating key, value strings into the canonical
// label suffix `k="v",k2="v2"`. Pairs keep caller order; a metric identity
// is the name plus this rendered string.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q (want key, value pairs)", labels))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the child for (name, labels), creating family and child as
// needed. Registering the same name with a different type is a programming
// error and panics, matching the repo's invariant style.
func (r *Registry) get(name, help, typ string, labels []string, mk func() *child) *child {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, children: map[string]*child{}}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if f.help == "" {
		f.help = help
	}
	ch := f.children[key]
	if ch == nil {
		ch = mk()
		ch.labels = key
		f.children[key] = ch
	}
	return ch
}

// Counter returns (creating if needed) the counter for name and labels
// (alternating key, value strings).
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	ch := r.get(name, help, typeCounter, labels, func() *child { return &child{counter: &Counter{}} })
	return ch.counter
}

// Gauge returns (creating if needed) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	ch := r.get(name, help, typeGauge, labels, func() *child { return &child{gauge: &Gauge{}} })
	return ch.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at collection
// time (scrape, manifest snapshot). Re-registering the same identity
// replaces the callback — later runs in one process supersede earlier ones.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	ch := r.get(name, help, typeGauge, labels, func() *child { return &child{} })
	r.mu.Lock()
	ch.fn = fn
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the histogram for name and
// labels. bounds are ascending inclusive upper bucket bounds; an implicit
// +Inf bucket is appended. If the identity already exists its original
// bounds are kept.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	ch := r.get(name, help, typeHistogram, labels, func() *child { return &child{hist: newHistogram(bounds)} })
	return ch.hist
}

// famSnap is a point-in-time copy of one family taken under the registry
// lock: the children slice holds child copies (labels, metric pointers, fn),
// already sorted by label set. Rendering and export walk these copies, never
// the live family maps, because registration is concurrent with collection
// in shipped flows — dgs-worker serves /metrics before the trainer has
// constructed its optimizers, and Manifest.StartPeriodic exports while
// trainer.Run is still wiring workers. Metric values are still read live
// through the copied pointers (atomics; monitoring tolerates that).
type famSnap struct {
	name, help, typ string
	children        []child
}

// snapshotFams copies every family and its children under the lock so
// rendering and export walk a stable structure. Reading ch.fn here, under
// the same lock GaugeFunc writes it, is what makes callback re-registration
// safe against a concurrent scrape.
func (r *Registry) snapshotFams() []famSnap {
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.fams))
	for _, f := range r.fams {
		fs := famSnap{
			name:     f.name,
			help:     f.help,
			typ:      f.typ,
			children: make([]child, 0, len(f.children)),
		}
		for _, ch := range f.children {
			fs.children = append(fs.children, *ch)
		}
		sort.Slice(fs.children, func(i, j int) bool { return fs.children[i].labels < fs.children[j].labels })
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// value reads a counter/gauge/func child's current value.
func (ch *child) value() float64 {
	switch {
	case ch.counter != nil:
		return float64(ch.counter.Value())
	case ch.gauge != nil:
		return ch.gauge.Value()
	case ch.fn != nil:
		return ch.fn()
	}
	return 0
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE lines, families sorted by name,
// children by label set, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.snapshotFams() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i := range f.children {
			ch := &f.children[i]
			if f.typ == typeHistogram {
				writeHistogram(w, f.name, ch)
				continue
			}
			fmt.Fprintf(w, "%s%s %s\n", f.name, braced(ch.labels), formatFloat(ch.value()))
		}
	}
}

// Render returns the full Prometheus text page.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// writeHistogram emits one labelled histogram in cumulative bucket form.
func writeHistogram(w io.Writer, name string, ch *child) {
	h := ch.hist
	counts, total, sum := h.snapshot()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(ch.labels, `le="`+formatFloat(b)+`"`)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(joinLabels(ch.labels, `le="+Inf"`)), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(ch.labels), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(ch.labels), total)
}

// braced wraps a rendered label string in {} or returns "" when empty.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends one rendered pair to a (possibly empty) label string.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Export flattens the registry into a JSON-friendly map for the run
// manifest: counters and gauges become numbers keyed by
// `name{labels}`; histograms become {count, sum, p50, p95, p99} objects.
func (r *Registry) Export() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFams() {
		for i := range f.children {
			ch := &f.children[i]
			key := f.name + braced(ch.labels)
			if f.typ == typeHistogram {
				h := ch.hist
				_, total, sum := h.snapshot()
				out[key] = map[string]any{
					"count": total,
					"sum":   sum,
					"p50":   h.Quantile(0.50),
					"p95":   h.Quantile(0.95),
					"p99":   h.Quantile(0.99),
				}
				continue
			}
			out[key] = ch.value()
		}
	}
	return out
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the embeddable observability endpoint: /metrics (Prometheus
// text format), /healthz, /manifest (JSON run manifest when attached) and
// the full /debug/pprof suite. dgs-server, dgs-worker and the in-process
// sim all embed one; it costs nothing until something scrapes it.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	manifest *Manifest
}

// ListenAndServe starts the endpoint on addr (e.g. "127.0.0.1:9090", or
// ":0" for an ephemeral port — read the bound address back with Addr).
// A nil registry means Default().
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/manifest", s.handleManifest)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the endpoint.
func (s *Server) URL() string { return "http://" + s.Addr() }

// SetManifest attaches a run manifest served at /manifest.
func (s *Server) SetManifest(m *Manifest) {
	s.mu.Lock()
	s.manifest = m
	s.mu.Unlock()
}

// Close stops the endpoint immediately (in-flight scrapes are aborted;
// metrics are monitoring data, not state).
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	m := s.manifest
	s.mu.Unlock()
	if m == nil {
		http.Error(w, "no run manifest attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.Snapshot())
}

package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from many goroutines and checks the totals. Run under -race (make check
// does) this is the registry's thread-safety proof.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_level", "level")
	h := reg.Histogram("test_lat", "lat", []float64{1, 2, 4, 8})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Same identity resolved concurrently must be the same metric.
			cc := reg.Counter("test_ops_total", "ops")
			hh := reg.Histogram("test_lat", "lat", []float64{1, 2, 4, 8})
			for i := 0; i < perWorker; i++ {
				cc.Inc()
				g.Add(1)
				hh.Observe(float64(i % 10))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Σ (i%10) over perWorker values of i, times workers.
	wantSum := 0.0
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 10)
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestScrapeDuringRegistration renders and exports the registry while
// another goroutine is still creating metrics and re-registering gauge
// callbacks. That interleaving happens in shipped flows — dgs-worker serves
// /metrics before the trainer constructs its optimizers, and
// Manifest.StartPeriodic exports while trainer.Run is still wiring workers —
// so under -race this is the proof that collection never walks live registry
// maps or reads GaugeFunc callbacks unsynchronised.
//
// Each round pairs one registrar (fresh child creation plus callback
// replacement) with one scraper, joined by a barrier, so registration
// overlaps collection in every round instead of racing it once to
// completion at test start.
func TestScrapeDuringRegistration(t *testing.T) {
	reg := NewRegistry()
	const rounds = 32
	const perRound = 64
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rs := strconv.Itoa(r)
			for i := 0; i < perRound; i++ {
				reg.Counter("race_ops_total", "ops", "round", rs, "i", strconv.Itoa(i)).Inc()
				reg.Histogram("race_lat", "lat", []float64{1, 2, 4}, "round", rs).Observe(float64(i % 5))
				v := float64(i)
				reg.GaugeFunc("race_ratio", "ratio", func() float64 { return v })
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				reg.Render()
				reg.Export()
			}
		}()
		wg.Wait()
	}
	// Post-quiescence sanity: every registration landed.
	out := reg.Export()
	total := 0.0
	for key, v := range out {
		if strings.HasPrefix(key, "race_ops_total{") {
			total += v.(float64)
		}
	}
	if want := float64(rounds * perRound); total != want {
		t.Fatalf("summed race_ops_total = %v, want %v", total, want)
	}
}

// TestPrometheusFormat is the golden test for the text exposition format:
// deterministic ordering, label rendering, cumulative histogram buckets.
func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_pushes_total", "Pushes applied.", "worker", "1").Add(7)
	reg.Counter("b_pushes_total", "Pushes applied.", "worker", "0").Add(3)
	reg.Gauge("a_density", "Downward density.").Set(0.25)
	reg.GaugeFunc("c_ratio", "Compression ratio.", func() float64 { return 80 })
	h := reg.Histogram("d_staleness", "Observed staleness.", []float64{0, 1, 2}, "worker", "0")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(5)

	want := strings.Join([]string{
		"# HELP a_density Downward density.",
		"# TYPE a_density gauge",
		"a_density 0.25",
		"# HELP b_pushes_total Pushes applied.",
		"# TYPE b_pushes_total counter",
		`b_pushes_total{worker="0"} 3`,
		`b_pushes_total{worker="1"} 7`,
		"# HELP c_ratio Compression ratio.",
		"# TYPE c_ratio gauge",
		"c_ratio 80",
		"# HELP d_staleness Observed staleness.",
		"# TYPE d_staleness histogram",
		`d_staleness_bucket{worker="0",le="0"} 1`,
		`d_staleness_bucket{worker="0",le="1"} 3`,
		`d_staleness_bucket{worker="0",le="2"} 3`,
		`d_staleness_bucket{worker="0",le="+Inf"} 4`,
		`d_staleness_sum{worker="0"} 7`,
		`d_staleness_count{worker="0"} 4`,
		"",
	}, "\n")
	if got := reg.Render(); got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", "q", []float64{1, 2, 4, 8, 16})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	// 100 observations of 1.5 (bucket (1,2]), 100 of 3 (bucket (2,4]).
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 2 || p99 > 4 {
		t.Fatalf("p99 = %v, want within (2,4]", p99)
	}
	// Overflow observations report the top finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 16 {
		t.Fatalf("p100 with overflow = %v, want 16", got)
	}
}

func TestLabelRenderingAndIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x", "kind", "drop")
	b := reg.Counter("x_total", "x", "kind", "drop")
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := reg.Counter("x_total", "x", "kind", "dup")
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	a.Inc()
	c.Add(2)
	out := reg.Render()
	for _, line := range []string{`x_total{kind="drop"} 1`, `x_total{kind="dup"} 2`} {
		if !strings.Contains(out, line) {
			t.Fatalf("output missing %q:\n%s", line, out)
		}
	}
	// Label values with quotes/backslashes must be escaped.
	reg.Counter("esc_total", "e", "v", `a"b\c`).Inc()
	if !strings.Contains(reg.Render(), `esc_total{v="a\"b\\c"} 1`) {
		t.Fatalf("escaping broken:\n%s", reg.Render())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("m", "m")
}

func TestExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops_total", "ops", "worker", "0").Add(5)
	h := reg.Histogram("lat", "lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	out := reg.Export()
	if got := out[`ops_total{worker="0"}`]; got != float64(5) {
		t.Fatalf("exported counter = %v, want 5", got)
	}
	hm, ok := out["lat"].(map[string]any)
	if !ok {
		t.Fatalf("exported histogram missing: %v", out)
	}
	if hm["count"] != uint64(2) || hm["sum"] != 2.0 {
		t.Fatalf("exported histogram = %v", hm)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	want = []float64{0, 0.5, 1}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
	if b := StalenessBuckets(); b[0] != 0 || b[1] != 1 {
		t.Fatalf("StalenessBuckets = %v", b)
	}
}

package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func readManifest(t *testing.T, path string) map[string]any {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("manifest not valid JSON: %v\n%s", err, raw)
	}
	return doc
}

func TestManifestWriteFile(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wf_steps_total", "steps").Add(9)
	m := NewManifest(reg)
	m.Set("method", "samomentum")

	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	doc := readManifest(t, path)
	if doc["schema"] != ManifestSchema {
		t.Fatalf("schema = %v", doc["schema"])
	}
	run := doc["run"].(map[string]any)
	if run["method"] != "samomentum" {
		t.Fatalf("run = %v", run)
	}
	metrics := doc["metrics"].(map[string]any)
	if metrics["wf_steps_total"] != float64(9) {
		t.Fatalf("metrics = %v", metrics)
	}
	// No temp files left behind in the directory.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1 (temp file leaked?)", len(entries))
	}
}

func TestManifestStartPeriodic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pp_steps_total", "steps")
	m := NewManifest(reg)
	path := filepath.Join(t.TempDir(), "run.json")

	stop := m.StartPeriodic(path, time.Hour) // only the initial + final writes
	// The initial snapshot is written synchronously enough for polling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("initial manifest never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Add(4)
	stop()
	stop() // idempotent

	doc := readManifest(t, path)
	metrics := doc["metrics"].(map[string]any)
	if metrics["pp_steps_total"] != float64(4) {
		t.Fatalf("final snapshot stale: %v", metrics)
	}
}

// Package ssgd implements synchronous data-parallel training — the setting
// Gradient Dropping and Deep Gradient Compression were originally designed
// for (paper §2–3). Each step, every worker computes a gradient on the
// same model version; sparse contributions are aggregated at a barrier and
// one update is applied everywhere.
//
// The package exists so the repository can demonstrate the paper's
// motivating claim: the sync variants work well, but their downward path
// is a broadcast of aggregated updates that only stays cheap because of
// the barrier — remove the barrier (ASGD) and prior sparsifiers lose the
// compressible downward channel, which is exactly the gap DGS closes.
package ssgd

import (
	"fmt"
	"sync"

	"dgs/internal/data"
	"dgs/internal/nn"
	"dgs/internal/optim"
	"dgs/internal/sparse"
	"dgs/internal/stats"
	"dgs/internal/tensor"
)

// Method selects the synchronous algorithm.
type Method int

// The synchronous methods from the paper's related work.
const (
	// SSGD is synchronous SGD with server-side momentum (paper Eq. 7).
	SSGD Method = iota
	// GD is Gradient Dropping: per-worker Top-k with residuals.
	GD
	// DGC is Deep Gradient Compression: momentum correction + masking.
	DGC
)

// String names the method.
func (m Method) String() string {
	switch m {
	case SSGD:
		return "SSGD"
	case GD:
		return "GD"
	case DGC:
		return "DGC"
	default:
		return fmt.Sprintf("ssgd.Method(%d)", int(m))
	}
}

// Config describes one synchronous run.
type Config struct {
	Method    Method
	Workers   int
	BatchSize int // per worker
	Epochs    int
	LR        float32
	LRDecayAt []int
	Momentum  float32 // server momentum for SSGD, worker momentum for DGC
	KeepRatio float64 // for GD/DGC
	Seed      uint64
	// BuildModel must produce identical models for identical RNGs.
	BuildModel func(rng *tensor.RNG) *nn.Model
	Dataset    data.Dataset
	EvalLimit  int
}

// Result reports a synchronous run.
type Result struct {
	Method        Method
	FinalAccuracy float64
	Loss          *stats.Series
	Accuracy      *stats.Series
	// Steps is the number of synchronous rounds executed.
	Steps int
	// AvgUpBytes is the mean encoded bytes one worker uploads per round;
	// AvgDownBytes the mean broadcast size per worker per round.
	AvgUpBytes, AvgDownBytes float64
}

func (c *Config) validate() error {
	if c.Workers < 1 || c.BatchSize < 1 || c.Epochs < 1 {
		return fmt.Errorf("ssgd: workers/batch/epochs must be positive")
	}
	if c.BuildModel == nil || c.Dataset == nil {
		return fmt.Errorf("ssgd: BuildModel and Dataset are required")
	}
	if c.Method != SSGD && (c.KeepRatio <= 0 || c.KeepRatio > 1) {
		return fmt.Errorf("ssgd: keep ratio %v out of (0,1]", c.KeepRatio)
	}
	if (c.Method == SSGD || c.Method == DGC) && (c.Momentum <= 0 || c.Momentum >= 1) {
		return fmt.Errorf("ssgd: momentum %v out of (0,1)", c.Momentum)
	}
	return nil
}

// Run executes synchronous training.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Identical replicas, one per worker (real parallel gradient compute).
	replicas := make([]*nn.Model, cfg.Workers)
	loaders := make([]*data.Loader, cfg.Workers)
	var workerOpts []optim.WorkerOptimizer
	var sizes []int
	for k := range replicas {
		replicas[k] = cfg.BuildModel(tensor.NewRNG(cfg.Seed))
		loaders[k] = data.NewLoader(cfg.Dataset, cfg.BatchSize, cfg.Seed+uint64(500+k), true)
	}
	sizes = replicas[0].LayerSizes()
	for k := 0; k < cfg.Workers; k++ {
		switch cfg.Method {
		case SSGD:
			workerOpts = append(workerOpts, optim.NewDenseSGD())
		case GD:
			workerOpts = append(workerOpts, optim.NewGradientDropping(sizes, cfg.KeepRatio))
		case DGC:
			workerOpts = append(workerOpts, optim.NewDGC(sizes, cfg.Momentum, cfg.KeepRatio))
		}
	}

	// Server-side momentum buffer (SSGD only).
	velocity := make([][]float32, len(sizes))
	agg := make([][]float32, len(sizes))
	for i, n := range sizes {
		velocity[i] = make([]float32, n)
		agg[i] = make([]float32, n)
	}

	steps := cfg.Epochs * cfg.Dataset.NumTrain() / (cfg.BatchSize * cfg.Workers)
	if steps < 1 {
		steps = 1
	}
	stepsPerEpoch := float64(steps) / float64(cfg.Epochs)

	res := &Result{
		Method:   cfg.Method,
		Loss:     stats.NewSeries(cfg.Method.String() + "-loss"),
		Accuracy: stats.NewSeries(cfg.Method.String() + "-acc"),
		Steps:    steps,
	}

	var upBytes, downBytes int64
	losses := make([]float64, cfg.Workers)
	updates := make([]sparse.Update, cfg.Workers)
	nextEval := 1.0

	for step := 0; step < steps; step++ {
		lr := cfg.LR
		epoch := float64(step) / stepsPerEpoch
		for _, d := range cfg.LRDecayAt {
			if epoch >= float64(d) {
				lr *= 0.1
			}
		}

		// Parallel gradient computation on identical replicas.
		var wg sync.WaitGroup
		for k := 0; k < cfg.Workers; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				batch := loaders[k].Next()
				m := replicas[k]
				m.ZeroGrad()
				logits := m.Forward(batch.X, true)
				loss, g := nn.SoftmaxCrossEntropy(logits, batch.Labels)
				m.Backward(g)
				losses[k] = loss
				updates[k] = workerOpts[k].Prepare(m.Gradients(), lr)
			}(k)
		}
		wg.Wait()

		// Barrier: aggregate the (sparse) worker contributions, averaging
		// across workers as in data-parallel SGD.
		for i := range agg {
			for j := range agg[i] {
				agg[i][j] = 0
			}
		}
		invN := float32(1) / float32(cfg.Workers)
		for k := 0; k < cfg.Workers; k++ {
			enc := sparse.Encode(&updates[k])
			upBytes += int64(len(enc))
			for ci := range updates[k].Chunks {
				c := &updates[k].Chunks[ci]
				sparse.Scatter(c, agg[c.Layer], invN)
			}
		}

		// Server update: momentum for SSGD, direct application otherwise
		// (GD has no momentum; DGC's momentum lives at the workers).
		if cfg.Method == SSGD {
			for i := range velocity {
				for j := range velocity[i] {
					velocity[i][j] = cfg.Momentum*velocity[i][j] + agg[i][j]
					agg[i][j] = velocity[i][j]
				}
			}
		}
		// Broadcast: every replica applies the same aggregated update.
		// Wire cost is the encoding of the aggregate's nonzeros per worker
		// (dense for SSGD; at most workers×k coordinates for GD/DGC).
		bcast := nonzeroUpdate(agg)
		encDown := sparse.Encode(&bcast)
		downBytes += int64(len(encDown)) * int64(cfg.Workers)
		for k := 0; k < cfg.Workers; k++ {
			params := replicas[k].Params()
			for i := range agg {
				tensor.Axpy(-1, agg[i], params[i].Value.Data)
			}
		}

		meanLoss := 0.0
		for _, l := range losses {
			meanLoss += l
		}
		meanLoss /= float64(cfg.Workers)
		res.Loss.Add(epoch, meanLoss)

		if epoch >= nextEval {
			acc := evaluate(&cfg, replicas[0])
			res.Accuracy.Add(epoch, acc)
			for epoch >= nextEval {
				nextEval++
			}
		}
	}

	res.FinalAccuracy = evaluate(&cfg, replicas[0])
	res.Accuracy.Add(float64(cfg.Epochs), res.FinalAccuracy)
	res.AvgUpBytes = float64(upBytes) / float64(steps*cfg.Workers)
	res.AvgDownBytes = float64(downBytes) / float64(steps*cfg.Workers)
	return res, nil
}

// evaluate measures test accuracy with replica 0.
func evaluate(cfg *Config, model *nn.Model) float64 {
	classes := cfg.Dataset.Classes()
	return data.Evaluate(cfg.Dataset, 64, cfg.EvalLimit, func(x *tensor.Tensor) []int {
		logits := model.Forward(x, false)
		preds := make([]int, x.Dim(0))
		for i := range preds {
			preds[i] = tensor.ArgMax(logits.Data[i*classes : (i+1)*classes])
		}
		return preds
	})
}

// nonzeroUpdate collects the nonzero coordinates of per-layer dense buffers
// into a sparse update (for wire-size accounting of the broadcast).
func nonzeroUpdate(x [][]float32) sparse.Update {
	var u sparse.Update
	for layer, lx := range x {
		var idx []int32
		for j, v := range lx {
			if v != 0 {
				idx = append(idx, int32(j))
			}
		}
		if len(idx) == 0 {
			continue
		}
		u.Chunks = append(u.Chunks, sparse.Gather(layer, lx, idx))
	}
	return u
}

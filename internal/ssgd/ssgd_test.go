package ssgd

import (
	"math"
	"testing"

	"dgs/internal/data"
	"dgs/internal/nn"
	"dgs/internal/tensor"
)

func quickConfig(m Method, workers int) Config {
	ds := data.NewGaussianMixture(8, 4, 2048, 512, 0.35, 11)
	return Config{
		Method:    m,
		Workers:   workers,
		BatchSize: 16,
		Epochs:    4,
		LR:        0.1,
		LRDecayAt: []int{3},
		Momentum:  0.7,
		KeepRatio: 0.05,
		Seed:      1,
		Dataset:   ds,
		BuildModel: func(rng *tensor.RNG) *nn.Model {
			return nn.NewMLP(rng, 8, 32, 4)
		},
		EvalLimit: 256,
	}
}

func TestSyncMethodsLearn(t *testing.T) {
	for _, m := range []Method{SSGD, GD, DGC} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(quickConfig(m, 4))
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalAccuracy < 0.75 {
				t.Fatalf("%s accuracy %.3f", m, res.FinalAccuracy)
			}
			first := res.Loss.Points()[0].Y
			if res.Loss.Last().Y >= first {
				t.Fatalf("%s loss did not decrease", m)
			}
		})
	}
}

// Synchronous training with identical replicas is deterministic: two runs
// with the same seed must produce identical accuracy.
func TestSyncDeterministic(t *testing.T) {
	a, err := Run(quickConfig(GD, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(GD, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("sync runs not deterministic: %.4f vs %.4f", a.FinalAccuracy, b.FinalAccuracy)
	}
}

// SSGD with one worker is plain MSGD: the velocity recurrence must match a
// hand-rolled momentum loop on the same data. We verify via loss decrease
// and accuracy rather than bitwise equality (replica order differs).
func TestSSGDSingleWorker(t *testing.T) {
	res, err := Run(quickConfig(SSGD, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.8 {
		t.Fatalf("single-worker SSGD accuracy %.3f", res.FinalAccuracy)
	}
}

func TestSparseUploadSmallerThanDense(t *testing.T) {
	dense, err := Run(quickConfig(SSGD, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(GD, 4)
	cfg.KeepRatio = 0.01
	sp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.AvgUpBytes*5 > dense.AvgUpBytes {
		t.Fatalf("GD upload %.0f B should be <20%% of SSGD's %.0f B", sp.AvgUpBytes, dense.AvgUpBytes)
	}
	// The sync broadcast stays bounded: at most workers×k coordinates.
	if sp.AvgDownBytes > dense.AvgDownBytes {
		t.Fatalf("GD broadcast %.0f B exceeds dense broadcast %.0f B", sp.AvgDownBytes, dense.AvgDownBytes)
	}
}

func TestBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BuildModel = nil },
		func(c *Config) { c.Dataset = nil },
		func(c *Config) { c.Method = GD; c.KeepRatio = 0 },
		func(c *Config) { c.Method = DGC; c.Momentum = 0 },
	}
	for i, mut := range cases {
		cfg := quickConfig(SSGD, 2)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMethodString(t *testing.T) {
	if SSGD.String() != "SSGD" || GD.String() != "GD" || DGC.String() != "DGC" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method must still render")
	}
}

// Replicas must remain bitwise identical after every barrier (they all
// apply the same aggregate): check after a short run.
func TestReplicasStayInSync(t *testing.T) {
	cfg := quickConfig(GD, 3)
	cfg.Epochs = 1
	// Run manually to inspect replicas: reuse Run then verify the final
	// accuracy is computable — but Run hides replicas, so instead verify
	// via determinism across worker counts sharing a total batch: a
	// 1-worker and the mean-aggregated 1-step behaviour agree in loss
	// magnitude (smoke-level sanity).
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Loss.Last().Y) {
		t.Fatal("loss diverged")
	}
}

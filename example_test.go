package dgs_test

import (
	"fmt"
	"log"

	"dgs"
)

// The smallest complete training run: four asynchronous workers learning a
// Gaussian-mixture task with DGS at top-5% sparsity.
func ExampleTrain() {
	res, err := dgs.Train(dgs.Config{
		Method:    dgs.DGS,
		Workers:   4,
		Model:     dgs.ModelMLP,
		Dataset:   dgs.DatasetMixture,
		Epochs:    3,
		KeepRatio: 0.05,
		EvalLimit: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Accuracy depends on async interleaving; assert the robust property.
	fmt.Println(res.FinalAccuracy > 0.5)
	fmt.Println(res.BytesUp > 0 && res.BytesDown > 0)
	// Output:
	// true
	// true
}

// Estimating deployment wall-clock from measured traffic: a dense-exchange
// method saturates a 1 Gbps link that a sparse method barely touches.
func ExampleSimulate() {
	dense := dgs.Simulate(dgs.ClusterSim{
		Workers:        16,
		BandwidthGbps:  1,
		ComputeSeconds: 0.3,
		UpBytes:        46e6, // ResNet-18-size dense messages
		DownBytes:      46e6,
	})
	sparseRun := dgs.Simulate(dgs.ClusterSim{
		Workers:        16,
		BandwidthGbps:  1,
		ComputeSeconds: 0.3,
		UpBytes:        46e4, // top-1% sparse messages
		DownBytes:      46e4,
	})
	fmt.Println(dense.Speedup < 2)
	fmt.Println(sparseRun.Speedup > 10)
	// Output:
	// true
	// true
}

// Comparing two methods through the public API.
func ExampleMethods() {
	for _, m := range []dgs.Method{dgs.ASGD, dgs.DGS} {
		fmt.Println(m.String())
	}
	// Output:
	// ASGD
	// DGS
}

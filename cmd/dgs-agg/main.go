// Command dgs-agg runs one aggregator of the hierarchical aggregation tier
// (DESIGN.md §15): it terminates worker sessions, merges their sparse
// pushes into one combined push per window, forwards it to the upstream
// dgs-server over a single pipelined connection, and fans the downward
// diffs back out from a local mirror. Workers point their -addr at this
// process instead of the server; model geometry flags must match both
// sides.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/agg"
	"dgs/internal/nn"
	"dgs/internal/telemetry"
	"dgs/internal/tensor"
	"dgs/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7100", "listen address for downstream workers")
		upstream = flag.String("upstream", "127.0.0.1:7000", "upstream dgs-server address")
		upWorker = flag.Int("upstream-worker", 0, "this aggregator's worker id at the upstream server")
		maxWork  = flag.Int("max-workers", 64, "downstream worker slots (distinct worker ids)")
		classes  = flag.Int("classes", 10, "model output classes (must match server and workers)")
		inC      = flag.Int("inc", 3, "input channels")
		inHW     = flag.Int("hw", 16, "input spatial size")

		window     = flag.Duration("window-wait", 500*time.Microsecond, "max wait before an unfilled window is forwarded")
		windowSize = flag.Int("window", 16, "worker pushes merged into one upstream push")
		depth      = flag.Int("depth", 2, "windows in flight on the upstream connection")

		retries    = flag.Int("retries", 8, "upstream redial retries per exchange")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "base upstream retry backoff")
		maxBackoff = flag.Duration("max-backoff", 2*time.Second, "cap on the upstream retry backoff")
		timeout    = flag.Duration("timeout", 30*time.Second, "upstream per-exchange deadline (0 disables)")

		maxInflight  = flag.Int("max-inflight", 0, "admission bound on concurrently executing downstream exchanges (0 = unbounded)")
		retryHint    = flag.Duration("retry-hint", 5*time.Millisecond, "backoff hint attached to overload rejections")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before exiting anyway")
		blockSize    = flag.Int("block-size", 0, "mirror dirty-tracking block size in elements (power of two; 0 = auto)")
		statEvery    = flag.Duration("stats", 10*time.Second, "stats print interval")
		metrics      = flag.String("metrics", "", "telemetry HTTP address for /metrics and /debug/pprof (empty disables)")
	)
	flag.Parse()

	if *metrics != "" {
		msrv, err := telemetry.ListenAndServe(*metrics, nil)
		fatalIf(err, "telemetry")
		defer msrv.Close()
		fmt.Printf("dgs-agg: telemetry on %s/metrics\n", msrv.URL())
	}

	model := nn.NewResNetS(tensor.NewRNG(1), nn.ResNetSConfig{
		InC: *inC, H: *inHW, W: *inHW,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: *classes,
	})
	shift := uint(0)
	if *blockSize > 0 {
		if *blockSize&(*blockSize-1) != 0 {
			fmt.Fprintf(os.Stderr, "dgs-agg: -block-size %d is not a power of two\n", *blockSize)
			os.Exit(2)
		}
		for 1<<shift < *blockSize {
			shift++
		}
	}

	a, err := agg.New(agg.Config{
		LayerSizes:     model.LayerSizes(),
		MaxWorkers:     *maxWork,
		Window:         *windowSize,
		WindowWait:     *window,
		Depth:          *depth,
		UpstreamWorker: *upWorker,
		Dial: func() (transport.MuxLink, error) {
			c, err := transport.DialMux(*upstream)
			if err != nil {
				return nil, err
			}
			c.ExchangeTimeout = *timeout
			return c, nil
		},
		MaxRetries: *retries, Backoff: *backoff, MaxBackoff: *maxBackoff,
		MaxInflight: *maxInflight, RetryHint: *retryHint, DrainHint: *drainTimeout,
		BlockShift: shift,
	})
	fatalIf(err, "config")

	srv, err := transport.ListenTCP(*addr, a.Handler())
	fatalIf(err, "listen")
	fmt.Printf("dgs-agg: %s → %s (upstream worker %d), window %d/%s, depth %d\n",
		srv.Addr(), *upstream, *upWorker, *windowSize, *window, *depth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*statEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := a.Stats()
			ss := a.Sessions()
			dedup := 1.0
			if st.MergedNNZ > 0 {
				dedup = float64(st.PartNNZ) / float64(st.MergedNNZ)
			}
			fmt.Printf("dgs-agg: windows=%d parts=%d dedup=%.2fx frames(shared=%d encoded=%d) resets=%d sessions(joins=%d replays=%d)\n",
				st.Windows, st.Parts, dedup, st.SharedFrames, st.EncodedFrames,
				st.UpstreamResets, ss.Hellos, ss.Replays)
		case s := <-sig:
			// Graceful drain: stop admitting, finish the in-flight windows
			// upstream, then close. Workers get RetryAfter frames and back
			// off; once Close returns the upstream has absorbed everything
			// this tier acknowledged.
			fmt.Printf("dgs-agg: %v — draining\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := a.Drain(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-agg: drain incomplete: %v\n", err)
			}
			cancel()
			srv.Close()
			a.Close()
			fmt.Println("dgs-agg: shutting down")
			return
		}
	}
}

func fatalIf(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgs-agg: %s: %v\n", what, err)
		os.Exit(1)
	}
}

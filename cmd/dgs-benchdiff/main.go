// Command dgs-benchdiff gates CI on performance regressions: it compares a
// freshly measured microbenchmark report (dgs-bench -microbench -json)
// against the tracked baseline (BENCH_PR2.json) and exits nonzero when the
// hot paths regressed.
//
// Raw ns/op is not comparable across machines, so the gate works on
// machine-relative quantities only:
//
//   - kernel speedups: each report measures the new kernels AND the frozen
//     pre-PR baselines in the same run, so speedup = baseline/new cancels
//     the machine out. A speedup that shrank by more than -max-slowdown
//     (default 25%) fails.
//   - allocations: the zero-allocation hot paths (conv backward, codec
//     round-trip, ps.Push, Top-k) must stay at 0 allocs/op on any machine.
//
// A SIMD-kernel mismatch between the reports (e.g. the baseline was
// measured with AVX2 and CI runs the pure-Go path) makes the speedups
// incomparable; that fails loudly unless -allow-simd-mismatch is given, in
// which case only the allocation and completeness checks apply.
//
// With -pipeline the reports are pipelined-exchange reports (dgs-bench
// -pipebench, tracked in BENCH_PR4.json) and the gate switches to that
// report's machine-relative quantities: the pipelined-vs-synchronous
// speedup is a within-run ratio (both depths measured in the same process
// against the same simulated RTT), so it must clear an absolute floor
// (-min-pipeline-speedup, default 1.3×) on any machine, and the TCP
// exchange round trip must stay allocation-free.
//
// With -server the reports are many-worker server saturation reports
// (dgs-bench -serverbench, tracked in BENCH_PR7.json). The gated quantities
// are again within-run ratios: the dirty-tracking server and the frozen
// single-mutex BaselineServer are measured in the same process on the same
// updates, and the 8-worker embed speedup must clear an absolute floor
// (-min-server-speedup, default 2×) on any machine. Two further gates cover
// the secondary-compression path: the embed_secondary 8-worker speedup
// (residual-summary gather vs the baseline's full-layer Top-k rescan, both
// with secondary on) must clear -min-secondary-speedup (default 3×), and
// the cnn workload's scan/skip ratio — a pure counting ratio, not a timing —
// must stay above -min-cnn-skip (default 0.5) now that auto block-shift
// adapts the block size to the layer geometry.
//
// With -agg the reports are aggregation-tier reports (dgs-bench -aggbench,
// tracked in BENCH_PR9.json). The gated quantity is once more a within-run
// ratio: the 4-aggregator tier and the direct topology saturate the same
// server with the same worker fleet over real TCP in the same process, so
// the tier's pushes/sec multiple must clear an absolute floor
// (-min-agg-speedup, default 3×), with the encode-once share cache
// demonstrably active (nonzero shared-frame ratio).
//
// Usage:
//
//	dgs-bench -microbench -benchtime 100ms -json current.json
//	dgs-benchdiff -baseline BENCH_PR2.json -current current.json
//	dgs-bench -pipebench -json pipe.json
//	dgs-benchdiff -pipeline -baseline BENCH_PR4.json -current pipe.json
//	dgs-bench -serverbench -json server.json
//	dgs-benchdiff -server -baseline BENCH_PR7.json -current server.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"dgs/internal/bench"
)

type rules struct {
	// maxSlowdown is the tolerated fractional speedup loss (0.25 = a kernel
	// may keep as little as 75% of its baseline speedup).
	maxSlowdown float64
	// allowSIMDMismatch skips the speedup comparison when the two reports
	// ran different kernels.
	allowSIMDMismatch bool
}

// diff returns one human-readable problem per violated rule (empty =
// gate passes).
func diff(baseline, current *bench.Report, r rules) []string {
	var problems []string

	cur := map[string]bench.Result{}
	for _, res := range current.Results {
		cur[res.Name] = res
	}
	for _, base := range baseline.Results {
		c, ok := cur[base.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("benchmark %q missing from current report", base.Name))
			continue
		}
		if base.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: %d allocs/op (baseline is allocation-free)", base.Name, c.AllocsPerOp))
		}
	}

	simdMismatch := baseline.SIMDKernel != current.SIMDKernel
	if simdMismatch && !r.allowSIMDMismatch {
		problems = append(problems, fmt.Sprintf(
			"simd_kernel mismatch (baseline %v, current %v): speedups are not comparable; "+
				"pass -allow-simd-mismatch to gate on allocations only",
			baseline.SIMDKernel, current.SIMDKernel))
	}
	if !simdMismatch {
		keys := make([]string, 0, len(baseline.Speedups))
		for k := range baseline.Speedups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			want := baseline.Speedups[k]
			got, ok := current.Speedups[k]
			if !ok {
				problems = append(problems, fmt.Sprintf("speedup %q missing from current report", k))
				continue
			}
			floor := want * (1 - r.maxSlowdown)
			if got < floor {
				problems = append(problems, fmt.Sprintf(
					"%s: speedup %.2fx below floor %.2fx (baseline %.2fx, tolerance %.0f%%)",
					k, got, floor, want, 100*r.maxSlowdown))
			}
		}
	}
	return problems
}

// diffPipeline gates the pipelined-exchange report. The speedup floor is
// absolute: the measurement is a within-run ratio, so "pipelining hides at
// least 30% of a round trip comparable to the serial step" is a portable
// claim. The baseline is consulted only for sanity (it must itself satisfy
// the gate, so a stale committed baseline fails loudly here, not in review).
func diffPipeline(baseline, current *bench.PipelineReport, minSpeedup float64) []string {
	var problems []string
	check := func(rep *bench.PipelineReport, name string) {
		if rep.Speedup < minSpeedup {
			problems = append(problems, fmt.Sprintf(
				"%s: pipelined speedup %.2fx below floor %.2fx (sync %.1f steps/s, pipelined %.1f steps/s at depth %d, rtt %.2f ms)",
				name, rep.Speedup, minSpeedup, rep.StepsPerSecSync, rep.StepsPerSecPipelined, rep.PipelineDepth, rep.RTTMillis))
		}
		if rep.ExchangeAllocsPerOp != 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: tcp exchange %d allocs/op (steady state must be allocation-free)", name, rep.ExchangeAllocsPerOp))
		}
	}
	check(baseline, "baseline")
	check(current, "current")
	return problems
}

// diffServer gates the many-worker server saturation report. Like the
// pipeline gate, the floor is absolute because the measurement is a
// within-run ratio (dirty-tracking server vs frozen single-mutex baseline,
// same process, same updates); the committed baseline report must itself
// satisfy the gate so a stale tracked file fails loudly here, not in review.
func diffServer(baseline, current *bench.ServerReport, minSpeedup, minSecondary, minCNNSkip float64) []string {
	var problems []string
	check := func(rep *bench.ServerReport, name string) {
		if rep.SpeedupAt8 < minSpeedup {
			problems = append(problems, fmt.Sprintf(
				"%s: 8-worker server speedup %.2fx below floor %.2fx (vs single-mutex baseline, embed workload)",
				name, rep.SpeedupAt8, minSpeedup))
		}
		if rep.SecondarySpeedupAt8 < minSecondary {
			problems = append(problems, fmt.Sprintf(
				"%s: 8-worker secondary speedup %.2fx below floor %.2fx (residual-summary gather vs full-scan Top-k baseline)",
				name, rep.SecondarySpeedupAt8, minSecondary))
		}
		if rep.CNNScanSkipRatio < minCNNSkip {
			problems = append(problems, fmt.Sprintf(
				"%s: cnn scan/skip ratio %.3f below floor %.2f (auto block-shift should skip most of the mixed geometry)",
				name, rep.CNNScanSkipRatio, minCNNSkip))
		}
		for _, want := range []string{"embed", "embed_secondary"} {
			found := false
			for _, pt := range rep.Results {
				if pt.Workload == want && pt.Workers == 8 {
					found = true
					if pt.PushesPerSec <= 0 || pt.BaselinePushesPerSec <= 0 {
						problems = append(problems, fmt.Sprintf(
							"%s: %s 8-worker row has non-positive throughput (%.1f / %.1f pushes/sec)",
							name, want, pt.PushesPerSec, pt.BaselinePushesPerSec))
					}
				}
			}
			if !found {
				problems = append(problems, fmt.Sprintf("%s: %s 8-worker row missing from report", name, want))
			}
		}
	}
	check(baseline, "baseline")
	check(current, "current")
	return problems
}

// diffAgg gates the aggregation-tier report. The gated quantity is a
// within-run ratio — the 4-aggregator tier and the direct topology push the
// same workload over real TCP in the same process — so the floor is
// absolute and portable: the tier must multiply saturated per-shard
// throughput by at least -min-agg-speedup on any machine. The committed
// baseline must itself satisfy the gate so a stale tracked file fails
// loudly here, not in review.
func diffAgg(baseline, current *bench.AggReport, minSpeedup float64) []string {
	var problems []string
	check := func(rep *bench.AggReport, name string) {
		if rep.SpeedupAt4 < minSpeedup {
			problems = append(problems, fmt.Sprintf(
				"%s: tiered 4-agg speedup %.2fx below floor %.2fx (vs direct topology, same run)",
				name, rep.SpeedupAt4, minSpeedup))
		}
		var direct, tiered4 *bench.AggPoint
		for i := range rep.Results {
			pt := &rep.Results[i]
			switch {
			case pt.Topology == "direct":
				direct = pt
			case pt.Topology == "tiered" && pt.Aggregators == 4:
				tiered4 = pt
			}
		}
		if direct == nil || tiered4 == nil {
			problems = append(problems, fmt.Sprintf("%s: direct and/or tiered 4-agg row missing from report", name))
			return
		}
		if direct.PushesPerSec <= 0 || tiered4.PushesPerSec <= 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: non-positive throughput (direct %.1f, tiered-4 %.1f pushes/sec)",
				name, direct.PushesPerSec, tiered4.PushesPerSec))
		}
		if tiered4.SharedFrameRatio <= 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: tiered 4-agg shared-frame ratio is zero — the encode-once cache never hit, "+
					"so the measured speedup does not exercise the gated mechanism", name))
		}
		if tiered4.DedupFactor < 1 {
			problems = append(problems, fmt.Sprintf(
				"%s: tiered 4-agg dedup factor %.2f below 1 (merged nnz exceeds part nnz)",
				name, tiered4.DedupFactor))
		}
	}
	check(baseline, "baseline")
	check(current, "current")
	return problems
}

// diffWire gates the wire-compression report. The gated quantity is a
// within-run ratio (each codec's bytes/step against codec 0 on the same
// updates in the same process), so the floor is absolute and portable:
// every registered lossy codec must at least halve the embed wire in both
// directions. The committed baseline must itself satisfy the gate so a
// stale tracked file fails loudly here, not in review.
func diffWire(baseline, current *bench.WireReport, maxRatio float64) []string {
	var problems []string
	check := func(rep *bench.WireReport, name string) {
		if len(rep.QuantizedCodecs) == 0 {
			problems = append(problems, fmt.Sprintf("%s: no quantized codecs measured", name))
		}
		if rep.QuantizedEmbedMaxRatio > maxRatio {
			problems = append(problems, fmt.Sprintf(
				"%s: worst quantized embed bytes/step ratio %.3fx above ceiling %.2fx (codecs %v)",
				name, rep.QuantizedEmbedMaxRatio, maxRatio, rep.QuantizedCodecs))
		}
		for _, pt := range rep.Results {
			if pt.BytesPerStepUp <= 0 || pt.BytesPerStepDown <= 0 {
				problems = append(problems, fmt.Sprintf(
					"%s: %s/%s has non-positive bytes/step (%.1f up, %.1f down)",
					name, pt.Codec, pt.Workload, pt.BytesPerStepUp, pt.BytesPerStepDown))
			}
		}
	}
	check(baseline, "baseline")
	check(current, "current")

	// Every lossy codec the baseline covered must still be measured — a
	// codec silently dropping out of the registry shouldn't pass the gate.
	cur := map[string]bool{}
	for _, c := range current.QuantizedCodecs {
		cur[c] = true
	}
	for _, c := range baseline.QuantizedCodecs {
		if !cur[c] {
			problems = append(problems, fmt.Sprintf("quantized codec %q missing from current report", c))
		}
	}
	return problems
}

// diffCkpt gates the checkpoint report. All three quantities are within-run
// ratios, so the floors are absolute and portable; the committed baseline
// must itself satisfy them so a stale tracked file fails loudly here.
func diffCkpt(baseline, current *bench.CkptReport, minIncr, minSkip, minRetained float64) []string {
	var problems []string
	check := func(rep *bench.CkptReport, name string) {
		if rep.IncrementalSpeedup < minIncr {
			problems = append(problems, fmt.Sprintf(
				"%s: incremental capture %.2fx vs full, below floor %.2fx (dirty tracking not paying off)",
				name, rep.IncrementalSpeedup, minIncr))
		}
		if rep.SkipRatio < minSkip {
			problems = append(problems, fmt.Sprintf(
				"%s: steady-state skip ratio %.2f below floor %.2f", name, rep.SkipRatio, minSkip))
		}
		if rep.PushThroughputRatio < minRetained {
			problems = append(problems, fmt.Sprintf(
				"%s: only %.2f of push throughput retained under checkpointing, floor %.2f",
				name, rep.PushThroughputRatio, minRetained))
		}
		if rep.EncodedBytes <= 0 {
			problems = append(problems, fmt.Sprintf("%s: empty encoded checkpoint", name))
		}
	}
	check(baseline, "baseline")
	check(current, "current")
	return problems
}

func loadWire(path string) (*bench.WireReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.WireReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadCkpt(path string) (*bench.CkptReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.CkptReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// diffRead gates the read-path report. The scrape speedup is a within-run
// ratio (the same pushers and scrapers run against both snapshot paths in
// one process), so the floor is absolute and portable. The replica gates
// are correctness-shaped: the post-load drain must land bitwise on the
// upstream M (including the lossy-codec re-base), and the worst poll gap
// under load must stay under an absolute ceiling — loopback TCP, so the
// ceiling is generous and a breach means the subscription loop starved.
func diffRead(baseline, current *bench.ReadReport, minScrape, maxGapMillis float64) []string {
	var problems []string
	check := func(rep *bench.ReadReport, name string) {
		if rep.ScrapeSpeedup < minScrape {
			problems = append(problems, fmt.Sprintf(
				"%s: push throughput under scrape load %.2fx of the full-lock path, below floor %.2fx",
				name, rep.ScrapeSpeedup, minScrape))
		}
		if rep.LockedPushesPerSec <= 0 || rep.CopyPushesPerSec <= 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: non-positive scraped throughput (locked %.1f, copy-on-version %.1f pushes/sec)",
				name, rep.LockedPushesPerSec, rep.CopyPushesPerSec))
		}
		if rep.CopyScrapesPerSec <= 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: copy-on-version scraper never completed a snapshot", name))
		}
		if !rep.DrainExact {
			problems = append(problems, fmt.Sprintf(
				"%s: replica drain did not converge bitwise to the upstream M (codec %s)",
				name, rep.ReplicaCodec))
		}
		if rep.MaxPollGapMillis > maxGapMillis {
			problems = append(problems, fmt.Sprintf(
				"%s: replica poll gap peaked at %.0f ms under load, ceiling %.0f ms",
				name, rep.MaxPollGapMillis, maxGapMillis))
		}
		if rep.ReplicaAppliedCoords == 0 {
			problems = append(problems, fmt.Sprintf(
				"%s: replica applied no coordinates — the subscription never fed the mirror", name))
		}
	}
	check(baseline, "baseline")
	check(current, "current")
	return problems
}

func loadRead(path string) (*bench.ReadReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ReadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadServer(path string) (*bench.ServerReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.ServerReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadPipeline(path string) (*bench.PipelineReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.PipelineReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func loadAgg(path string) (*bench.AggReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.AggReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func load(path string) (*bench.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_PR2.json", "tracked baseline report")
		currentPath  = flag.String("current", "", "freshly measured report (required)")
		maxSlowdown  = flag.Float64("max-slowdown", 0.25, "tolerated fractional kernel speedup loss")
		allowSIMD    = flag.Bool("allow-simd-mismatch", false, "skip speedup checks when SIMD kernels differ")
		pipeline     = flag.Bool("pipeline", false, "diff pipelined-exchange reports (dgs-bench -pipebench) instead of microbench reports")
		minPipeline  = flag.Float64("min-pipeline-speedup", 1.3, "pipelined-vs-sync steps/sec floor (with -pipeline)")
		server       = flag.Bool("server", false, "diff server saturation reports (dgs-bench -serverbench) instead of microbench reports")
		minServer    = flag.Float64("min-server-speedup", 2.0, "8-worker pushes/sec floor vs the single-mutex baseline (with -server)")
		minSecondary = flag.Float64("min-secondary-speedup", 3.0, "8-worker secondary pushes/sec floor vs the full-scan Top-k baseline (with -server)")
		minCNNSkip   = flag.Float64("min-cnn-skip", 0.5, "cnn workload scan/skip ratio floor under auto block-shift (with -server)")
		wire         = flag.Bool("wire", false, "diff wire-compression reports (dgs-bench -wirebench) instead of microbench reports")
		maxWireRatio = flag.Float64("max-wire-ratio", 0.5, "quantized embed bytes/step ceiling relative to codec 0 (with -wire)")
		aggTier      = flag.Bool("agg", false, "diff aggregation-tier reports (dgs-bench -aggbench) instead of microbench reports")
		minAgg       = flag.Float64("min-agg-speedup", 3.0, "tiered 4-agg pushes/sec floor vs the direct topology (with -agg)")
		readPath     = flag.Bool("read", false, "diff read-path reports (dgs-bench -readbench) instead of microbench reports")
		minScrape    = flag.Float64("min-scrape-speedup", 2.0, "push throughput under scrape load floor vs the full-lock snapshot path (with -read)")
		maxPollGap   = flag.Float64("max-poll-gap-millis", 1000, "replica worst poll gap ceiling under load, milliseconds (with -read)")
		ckpt         = flag.Bool("checkpoint", false, "diff checkpoint reports (dgs-bench -ckptbench) instead of microbench reports")
		minIncr      = flag.Float64("min-incremental-speedup", 2.0, "incremental-vs-full capture floor (with -checkpoint)")
		minSkip      = flag.Float64("min-skip-ratio", 0.5, "steady-state dirty-block skip floor (with -checkpoint)")
		minRetained  = flag.Float64("min-push-retained", 0.5, "push throughput retained under concurrent checkpointing (with -checkpoint)")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "dgs-benchdiff: -current is required")
		os.Exit(2)
	}
	if *wire {
		baseline, err := loadWire(*baselinePath)
		fatalIf(err)
		current, err := loadWire(*currentPath)
		fatalIf(err)
		problems := diffWire(baseline, current, *maxWireRatio)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("dgs-benchdiff: OK (worst quantized embed ratio %.3fx over %v, ceiling %.2fx)\n",
			current.QuantizedEmbedMaxRatio, current.QuantizedCodecs, *maxWireRatio)
		return
	}
	if *aggTier {
		baseline, err := loadAgg(*baselinePath)
		fatalIf(err)
		current, err := loadAgg(*currentPath)
		fatalIf(err)
		problems := diffAgg(baseline, current, *minAgg)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		var shared float64
		for _, pt := range current.Results {
			if pt.Topology == "tiered" && pt.Aggregators == 4 {
				shared = pt.SharedFrameRatio
			}
		}
		fmt.Printf("dgs-benchdiff: OK (tiered 4-agg %.2fx vs direct, floor %.2fx; %.0f%% downward frames shared)\n",
			current.SpeedupAt4, *minAgg, 100*shared)
		return
	}
	if *readPath {
		baseline, err := loadRead(*baselinePath)
		fatalIf(err)
		current, err := loadRead(*currentPath)
		fatalIf(err)
		problems := diffRead(baseline, current, *minScrape, *maxPollGap)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("dgs-benchdiff: OK (scraped pushes %.2fx vs full-lock, floor %.2fx; replica drain exact over %s, worst poll gap %.0f ms, ceiling %.0f ms)\n",
			current.ScrapeSpeedup, *minScrape, current.ReplicaCodec, current.MaxPollGapMillis, *maxPollGap)
		return
	}
	if *ckpt {
		baseline, err := loadCkpt(*baselinePath)
		fatalIf(err)
		current, err := loadCkpt(*currentPath)
		fatalIf(err)
		problems := diffCkpt(baseline, current, *minIncr, *minSkip, *minRetained)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("dgs-benchdiff: OK (incremental capture %.2fx vs full, %.0f%% blocks skipped, %.2f push throughput retained)\n",
			current.IncrementalSpeedup, 100*current.SkipRatio, current.PushThroughputRatio)
		return
	}
	if *server {
		baseline, err := loadServer(*baselinePath)
		fatalIf(err)
		current, err := loadServer(*currentPath)
		fatalIf(err)
		problems := diffServer(baseline, current, *minServer, *minSecondary, *minCNNSkip)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("dgs-benchdiff: OK (server %.2fx vs single-mutex, secondary %.2fx vs full-scan at 8 workers, cnn skip %.2f; floors %.2fx/%.2fx/%.2f)\n",
			current.SpeedupAt8, current.SecondarySpeedupAt8, current.CNNScanSkipRatio, *minServer, *minSecondary, *minCNNSkip)
		return
	}
	if *pipeline {
		baseline, err := loadPipeline(*baselinePath)
		fatalIf(err)
		current, err := loadPipeline(*currentPath)
		fatalIf(err)
		problems := diffPipeline(baseline, current, *minPipeline)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("dgs-benchdiff: OK (pipelined %.2fx vs sync, floor %.2fx; exchange 0 allocs/op)\n",
			current.Speedup, *minPipeline)
		return
	}
	baseline, err := load(*baselinePath)
	fatalIf(err)
	current, err := load(*currentPath)
	fatalIf(err)

	problems := diff(baseline, current, rules{
		maxSlowdown:       *maxSlowdown,
		allowSIMDMismatch: *allowSIMD,
	})
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "dgs-benchdiff: FAIL:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("dgs-benchdiff: OK (%d benchmarks, %s)\n", len(baseline.Results), gateSummary(baseline, current, *maxSlowdown))
}

// gateSummary describes which speedup gates actually ran, so CI logs don't
// claim coverage that was skipped: reaching OK with mismatched SIMD kernels
// means -allow-simd-mismatch reduced the gate to allocations only.
func gateSummary(baseline, current *bench.Report, maxSlowdown float64) string {
	if baseline.SIMDKernel != current.SIMDKernel {
		return "0 speedup gates (skipped: simd mismatch)"
	}
	return fmt.Sprintf("%d speedup gates, tolerance %.0f%%", len(baseline.Speedups), 100*maxSlowdown)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-benchdiff:", err)
		os.Exit(1)
	}
}

package main

import (
	"strings"
	"testing"

	"dgs/internal/bench"
)

func baselineReport() *bench.Report {
	return &bench.Report{
		GoVersion:  "go1.22",
		GoMaxProcs: 1,
		SIMDKernel: true,
		Results: []bench.Result{
			{Name: "gemm_128", NsPerOp: 83374, AllocsPerOp: 0},
			{Name: "ps_push", NsPerOp: 295709, AllocsPerOp: 0},
			{Name: "topk_1m", NsPerOp: 1.2e6, AllocsPerOp: 0},
		},
		Speedups: map[string]float64{
			"gemm_128":     15.8,
			"gemm_ta_conv": 9.8,
		},
	}
}

// currentLike clones the baseline as a fresh same-machine measurement.
func currentLike() *bench.Report {
	cur := baselineReport()
	cur.Speedups = map[string]float64{"gemm_128": 15.8, "gemm_ta_conv": 9.8}
	return cur
}

func wantProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Fatalf("no problem mentions %q in %v", substr, problems)
}

func TestDiffPassesOnEqualReports(t *testing.T) {
	if p := diff(baselineReport(), currentLike(), rules{maxSlowdown: 0.25}); len(p) != 0 {
		t.Fatalf("expected clean diff, got %v", p)
	}
}

func TestDiffToleratesSmallSlowdown(t *testing.T) {
	cur := currentLike()
	cur.Speedups["gemm_128"] = 15.8 * 0.80 // within the 25% budget
	if p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25}); len(p) != 0 {
		t.Fatalf("20%% slowdown should pass with 25%% tolerance, got %v", p)
	}
}

func TestDiffFailsOnKernelSlowdown(t *testing.T) {
	cur := currentLike()
	cur.Speedups["gemm_128"] = 15.8 * 0.5
	p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25})
	wantProblem(t, p, "gemm_128")
	wantProblem(t, p, "below floor")
}

func TestDiffFailsOnNewAllocations(t *testing.T) {
	cur := currentLike()
	cur.Results[1].AllocsPerOp = 3 // ps_push grew allocations
	p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25})
	wantProblem(t, p, "ps_push")
	wantProblem(t, p, "allocation-free")
}

func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	cur := currentLike()
	cur.Results = cur.Results[:1]
	p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25})
	wantProblem(t, p, `"ps_push" missing`)
	wantProblem(t, p, `"topk_1m" missing`)
}

func TestDiffFailsOnMissingSpeedupKey(t *testing.T) {
	cur := currentLike()
	delete(cur.Speedups, "gemm_ta_conv")
	p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25})
	wantProblem(t, p, `speedup "gemm_ta_conv" missing`)
}

func serverReport(speedupAt8 float64) *bench.ServerReport {
	return &bench.ServerReport{
		GoVersion:       "go1.22",
		GoMaxProcs:      1,
		BlockSize:       1024,
		PushesPerWorker: 256,
		Results: []bench.ServerPoint{
			{Workload: "embed", Workers: 8, Shards: 1,
				PushesPerSec: 1000 * speedupAt8, BaselinePushesPerSec: 1000,
				Speedup: speedupAt8, ScanSkipRatio: 0.9, BlockSize: 1024},
			{Workload: "embed_secondary", Workers: 8, Shards: 1,
				PushesPerSec: 4000, BaselinePushesPerSec: 800,
				Speedup: 5.0, ScanSkipRatio: 0.95, BlockSize: 1024},
			{Workload: "cnn", Workers: 8, Shards: 1,
				PushesPerSec: 5000, BaselinePushesPerSec: 3000, Speedup: 1.6,
				ScanSkipRatio: 0.7, BlockSize: 4},
		},
		SpeedupAt8:          speedupAt8,
		SecondarySpeedupAt8: 5.0,
		CNNScanSkipRatio:    0.7,
	}
}

func TestDiffServerPasses(t *testing.T) {
	if p := diffServer(serverReport(4.0), serverReport(2.3), 2.0, 3.0, 0.5); len(p) != 0 {
		t.Fatalf("expected clean server diff, got %v", p)
	}
}

func TestDiffServerFailsBelowFloor(t *testing.T) {
	p := diffServer(serverReport(4.0), serverReport(1.7), 2.0, 3.0, 0.5)
	wantProblem(t, p, "current")
	wantProblem(t, p, "below floor")
}

func TestDiffServerFailsOnStaleBaseline(t *testing.T) {
	// The committed baseline must itself satisfy the gate, so a stale
	// tracked report fails loudly rather than masking a regression.
	p := diffServer(serverReport(1.2), serverReport(3.0), 2.0, 3.0, 0.5)
	wantProblem(t, p, "baseline")
	wantProblem(t, p, "below floor")
}

func TestDiffServerFailsOnMissingRow(t *testing.T) {
	cur := serverReport(3.0)
	cur.Results = cur.Results[1:] // drop the embed 8-worker row
	p := diffServer(serverReport(4.0), cur, 2.0, 3.0, 0.5)
	wantProblem(t, p, "embed 8-worker row missing")
}

func TestDiffServerFailsOnBogusThroughput(t *testing.T) {
	cur := serverReport(3.0)
	cur.Results[0].BaselinePushesPerSec = 0
	p := diffServer(serverReport(4.0), cur, 2.0, 3.0, 0.5)
	wantProblem(t, p, "non-positive throughput")
}

func TestDiffServerFailsBelowSecondaryFloor(t *testing.T) {
	cur := serverReport(3.0)
	cur.SecondarySpeedupAt8 = 2.1
	p := diffServer(serverReport(4.0), cur, 2.0, 3.0, 0.5)
	wantProblem(t, p, "current")
	wantProblem(t, p, "secondary speedup 2.10x below floor 3.00x")
}

func TestDiffServerFailsOnMissingSecondaryRow(t *testing.T) {
	cur := serverReport(3.0)
	cur.Results = append(cur.Results[:1], cur.Results[2:]...) // drop embed_secondary
	p := diffServer(serverReport(4.0), cur, 2.0, 3.0, 0.5)
	wantProblem(t, p, "embed_secondary 8-worker row missing")
}

func TestDiffServerFailsBelowCNNSkipFloor(t *testing.T) {
	cur := serverReport(3.0)
	cur.CNNScanSkipRatio = 0.02 // the pre-auto-shift regime
	p := diffServer(serverReport(4.0), cur, 2.0, 3.0, 0.5)
	wantProblem(t, p, "cnn scan/skip ratio 0.020 below floor 0.50")
}

func TestDiffSIMDMismatch(t *testing.T) {
	cur := currentLike()
	cur.SIMDKernel = false
	// speedups on the generic path would look like a regression; the gate
	// must report the mismatch, not a bogus slowdown.
	cur.Speedups["gemm_128"] = 1.0

	p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25})
	wantProblem(t, p, "simd_kernel mismatch")
	for _, prob := range p {
		if strings.Contains(prob, "below floor") {
			t.Fatalf("speedup comparison should be skipped on mismatch: %v", p)
		}
	}

	// With the escape hatch, only allocation/completeness checks apply.
	if p := diff(baselineReport(), cur, rules{maxSlowdown: 0.25, allowSIMDMismatch: true}); len(p) != 0 {
		t.Fatalf("allow-simd-mismatch should pass, got %v", p)
	}
}

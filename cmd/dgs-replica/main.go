// Command dgs-replica runs one read replica of the read-path scale-out tier
// (DESIGN.md §16): it subscribes to a dgs-server (or dgs-agg) endpoint as a
// read-session pseudo-worker, feeds a local model mirror from the downward
// diff stream, and serves the mirrored model over HTTP at arbitrary
// fan-out — evaluation, scraping and model export traffic move here instead
// of contending with trainers on the parameter server's read path. Any
// number of replicas may attach; each needs its own worker id (an ordinary
// worker slot upstream, disjoint from the trainers').
//
// Example:
//
//	dgs-server  -addr 127.0.0.1:7000 -workers 4
//	dgs-worker  -addr 127.0.0.1:7000 -id 0 -workers 2 ...
//	dgs-worker  -addr 127.0.0.1:7000 -id 1 -workers 2 ...
//	dgs-replica -upstream 127.0.0.1:7000 -worker 2 -http 127.0.0.1:7080
//	curl -s 127.0.0.1:7080/model > model.bin   # "DGSM" dump, see internal/replica
//	curl -s 127.0.0.1:7080/replicaz            # subscription state as JSON
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/nn"
	_ "dgs/internal/quant" // registers the ternary codec
	"dgs/internal/replica"
	"dgs/internal/telemetry"
	"dgs/internal/tensor"
)

func main() {
	var (
		upstream = flag.String("upstream", "127.0.0.1:7000", "upstream dgs-server or dgs-agg address")
		worker   = flag.Int("worker", 0, "this replica's worker id at the upstream server")
		httpAddr = flag.String("http", "127.0.0.1:7080", "HTTP listen address for /model, /replicaz, /healthz")
		classes  = flag.Int("classes", 10, "model output classes (must match the upstream)")
		inC      = flag.Int("inc", 3, "input channels")
		inHW     = flag.Int("hw", 16, "input spatial size")

		codec     = flag.String("codec", "raw", "downward wire codec for steady-state polls (raw|ternary|sbc)")
		poll      = flag.Duration("poll", 50*time.Millisecond, "subscription poll interval (read staleness bound)")
		syncEvery = flag.Int("sync-every", 8, "every Nth poll is a raw exact probe (1 pins every poll raw)")

		retries    = flag.Int("retries", 8, "upstream redial retries per exchange")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "base upstream retry backoff")
		maxBackoff = flag.Duration("max-backoff", 2*time.Second, "cap on the upstream retry backoff")
		timeout    = flag.Duration("timeout", 30*time.Second, "upstream per-exchange deadline (0 disables)")
		blockSize  = flag.Int("block-size", 0, "mirror dirty-tracking block size in elements (power of two; 0 = auto)")

		statEvery = flag.Duration("stats", 10*time.Second, "stats print interval")
		metrics   = flag.String("metrics", "", "telemetry HTTP address for /metrics and /debug/pprof (empty disables)")
	)
	flag.Parse()

	if *metrics != "" {
		msrv, err := telemetry.ListenAndServe(*metrics, nil)
		fatalIf(err, "telemetry")
		defer msrv.Close()
		fmt.Printf("dgs-replica: telemetry on %s/metrics\n", msrv.URL())
	}

	model := nn.NewResNetS(tensor.NewRNG(1), nn.ResNetSConfig{
		InC: *inC, H: *inHW, W: *inHW,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: *classes,
	})
	shift := uint(0)
	if *blockSize > 0 {
		if *blockSize&(*blockSize-1) != 0 {
			fmt.Fprintf(os.Stderr, "dgs-replica: -block-size %d is not a power of two\n", *blockSize)
			os.Exit(2)
		}
		for 1<<shift < *blockSize {
			shift++
		}
	}

	r, err := replica.New(replica.Config{
		LayerSizes:   model.LayerSizes(),
		Worker:       *worker,
		Dial:         replica.DialStack(*upstream, *timeout, *retries, *backoff, *maxBackoff),
		Codec:        *codec,
		PollInterval: *poll,
		SyncEvery:    *syncEvery,
		BlockShift:   shift,
	})
	fatalIf(err, "config")

	ln, err := net.Listen("tcp", *httpAddr)
	fatalIf(err, "http listen")
	hsrv := &http.Server{Handler: r.Handler()}
	go hsrv.Serve(ln)
	fmt.Printf("dgs-replica: %s ← %s (worker %d, codec %s, poll %s)\n",
		ln.Addr(), *upstream, *worker, *codec, *poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*statEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := r.Stats()
			fmt.Printf("dgs-replica: gen=%d stamp=%d polls=%d (empty=%d) coords=%d resyncs=%d reads=%d stale=%s\n",
				st.Generation, st.Stamp, st.Polls, st.EmptyPolls, st.AppliedCoords,
				st.Resyncs, st.Reads, st.Staleness.Round(time.Millisecond))
			if err := r.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-replica: subscription parked: %v\n", err)
			}
		case s := <-sig:
			fmt.Printf("dgs-replica: %v — shutting down\n", s)
			hsrv.Close()
			r.Close()
			return
		}
	}
}

func fatalIf(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgs-replica: %s: %v\n", what, err)
		os.Exit(1)
	}
}

// Command dgs-plot converts a training-curve CSV (as produced by
// dgs-train -csv or stats.WriteCSV) into an SVG line chart.
//
//	dgs-train -method dgs -csv run.csv
//	dgs-plot -in run.csv -out run.svg -title "DGS on CIFAR-like"
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"dgs/internal/stats"
)

func main() {
	var (
		in     = flag.String("in", "", "input CSV path (default stdin)")
		out    = flag.String("out", "", "output SVG path (default stdout)")
		title  = flag.String("title", "", "chart title")
		xlabel = flag.String("xlabel", "epoch", "x axis label")
		ylabel = flag.String("ylabel", "", "y axis label")
		width  = flag.Int("width", 640, "image width")
		height = flag.Int("height", 400, "image height")
		logy   = flag.Bool("logy", false, "log-scale y axis")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		fatalIf(err)
		defer f.Close()
		r = f
	}
	series, err := readCSV(r)
	fatalIf(err)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		w = f
	}
	fatalIf(stats.WriteSVG(w, stats.SVGOptions{
		Width: *width, Height: *height,
		Title: *title, XLabel: *xlabel, YLabel: *ylabel, LogY: *logy,
	}, series...))
}

// readCSV parses "x,name1,name2,..." rows into one series per column;
// empty cells are skipped.
func readCSV(r io.Reader) ([]*stats.Series, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dgs-plot: parse csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("dgs-plot: csv needs a header and at least one row")
	}
	header := rows[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("dgs-plot: csv needs an x column and at least one series")
	}
	series := make([]*stats.Series, len(header)-1)
	for i := range series {
		series[i] = stats.NewSeries(header[i+1])
	}
	for rowIdx, row := range rows[1:] {
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("dgs-plot: row %d: bad x %q", rowIdx+2, row[0])
		}
		for c := 1; c < len(row) && c < len(header); c++ {
			if row[c] == "" {
				continue
			}
			y, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				return nil, fmt.Errorf("dgs-plot: row %d col %d: bad value %q", rowIdx+2, c, row[c])
			}
			series[c-1].Add(x, y)
		}
	}
	return series, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-plot:", err)
		os.Exit(1)
	}
}

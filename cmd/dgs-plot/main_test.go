package main

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "x,loss,acc\n0,2.3,\n1,1.1,0.5\n2,0.7,0.8\n"
	series, err := readCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "loss" || series[1].Name != "acc" {
		t.Fatalf("series wrong: %v", series)
	}
	if series[0].Len() != 3 {
		t.Fatalf("loss has %d points, want 3", series[0].Len())
	}
	if series[1].Len() != 2 {
		t.Fatalf("acc has %d points (empty cell must be skipped), want 2", series[1].Len())
	}
	if p := series[1].Last(); p.X != 2 || p.Y != 0.8 {
		t.Fatalf("acc last point %+v", p)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"x\n1\n",              // no series columns
		"x,a\nnotanumber,1\n", // bad x
		"x,a\n1,notanumber\n", // bad y
	}
	for i, in := range cases {
		if _, err := readCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

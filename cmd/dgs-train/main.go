// Command dgs-train runs one training configuration and prints the learning
// curve and summary statistics.
//
// Examples:
//
//	dgs-train -method dgs -workers 4 -dataset cifar -epochs 10
//	dgs-train -method asgd -workers 8 -dataset mixture -model mlp
//	dgs-train -method dgs -secondary -tcp 127.0.0.1:0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dgs"
	"dgs/internal/stats"
)

func parseMethod(s string) (dgs.Method, error) {
	switch strings.ToLower(s) {
	case "msgd":
		return dgs.MSGD, nil
	case "asgd":
		return dgs.ASGD, nil
	case "gd", "gd-async":
		return dgs.GDAsync, nil
	case "dgc", "dgc-async":
		return dgs.DGCAsync, nil
	case "dgs":
		return dgs.DGS, nil
	}
	return 0, fmt.Errorf("unknown method %q (msgd|asgd|gd|dgc|dgs)", s)
}

func parseModel(s string) (dgs.ModelKind, error) {
	switch strings.ToLower(s) {
	case "resnets", "resnet":
		return dgs.ModelResNetS, nil
	case "cnn":
		return dgs.ModelCNN, nil
	case "mlp":
		return dgs.ModelMLP, nil
	}
	return 0, fmt.Errorf("unknown model %q (resnets|cnn|mlp)", s)
}

func parseDataset(s string) (dgs.DatasetKind, error) {
	switch strings.ToLower(s) {
	case "cifar", "cifar-like":
		return dgs.DatasetCIFARLike, nil
	case "imagenet", "imagenet-like":
		return dgs.DatasetImageNetLike, nil
	case "mixture":
		return dgs.DatasetMixture, nil
	case "spirals":
		return dgs.DatasetSpirals, nil
	}
	return 0, fmt.Errorf("unknown dataset %q (cifar|imagenet|mixture|spirals)", s)
}

func main() {
	var (
		method    = flag.String("method", "dgs", "training method: msgd|asgd|gd|dgc|dgs")
		workers   = flag.Int("workers", 4, "number of asynchronous workers")
		model     = flag.String("model", "resnets", "model: resnets|cnn|mlp")
		dataset   = flag.String("dataset", "cifar", "dataset: cifar|imagenet|mixture|spirals")
		batch     = flag.Int("batch", 8, "per-worker batch size")
		epochs    = flag.Int("epochs", 6, "training epochs")
		lr        = flag.Float64("lr", 0.1, "initial learning rate")
		momentum  = flag.Float64("momentum", 0.7, "momentum coefficient m")
		keep      = flag.Float64("keep", 0.01, "Top-k keep ratio R (0.01 = top 1%)")
		secondary = flag.Bool("secondary", false, "enable downward secondary compression")
		clip      = flag.Float64("clip", 0, "global-norm gradient clip (0 = off)")
		wd        = flag.Float64("wd", 0, "L2 weight decay (0 = off)")
		warmup    = flag.Float64("warmup", 0, "warm-up fraction of training (0 = off)")
		ternary   = flag.Bool("ternary", false, "ternary-quantize sparse values (legacy, no error feedback; prefer -codec)")
		codec     = flag.String("codec", "raw", "wire compression backend (raw|ternary|sbc); lossy codecs fold their error into the residual state")
		shards    = flag.Int("shards", 1, "parameter-server shards")
		seed      = flag.Uint64("seed", 1, "random seed")
		scale     = flag.Float64("datascale", 1, "dataset size multiplier")
		tcp       = flag.String("tcp", "", "run exchanges over TCP at this address (e.g. 127.0.0.1:0)")
		pipeline  = flag.Int("pipeline", 1, "in-flight exchanges per worker (1 = synchronous, >1 overlaps comm with compute)")
		csv       = flag.String("csv", "", "write loss/accuracy curves to this CSV file")
		metrics   = flag.String("metrics", "", "serve /metrics and /debug/pprof at this address (e.g. 127.0.0.1:9090)")
		manifest  = flag.String("manifest", "", "periodically write the JSON run manifest to this file")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	fatalIf(err)
	mk, err := parseModel(*model)
	fatalIf(err)
	dk, err := parseDataset(*dataset)
	fatalIf(err)

	res, err := dgs.Train(dgs.Config{
		Method: m, Workers: *workers, Model: mk, Dataset: dk,
		BatchSize: *batch, Epochs: *epochs,
		LR: float32(*lr), Momentum: float32(*momentum),
		KeepRatio: *keep, Secondary: *secondary,
		GradClip: float32(*clip), WeightDecay: float32(*wd),
		WarmupFrac: *warmup, Ternary: *ternary, Codec: *codec, Shards: *shards,
		Seed: *seed, DataScale: *scale,
		TCPAddr: *tcp, PipelineDepth: *pipeline,
		MetricsAddr: *metrics, ManifestPath: *manifest,
	})
	fatalIf(err)

	fmt.Printf("method=%s workers=%d model=%s dataset=%s\n", res.Method, *workers, *model, *dataset)
	fmt.Println("\nTraining loss vs epoch:")
	fmt.Print(stats.AsciiPlot(72, 16, res.Loss))
	fmt.Println("\nTest accuracy vs epoch:")
	fmt.Print(stats.AsciiPlot(72, 12, res.Accuracy))
	fmt.Printf("\nfinal top-1 accuracy: %.2f%%\n", 100*res.FinalAccuracy)
	fmt.Printf("iterations: %d\n", res.Iterations)
	fmt.Printf("traffic: up %.1f KB/iter, down %.1f KB/iter (total %.2f MB up, %.2f MB down)\n",
		res.AvgUpBytes/1e3, res.AvgDownBytes/1e3, float64(res.BytesUp)/1e6, float64(res.BytesDown)/1e6)
	fmt.Printf("staleness: mean %.2f, max %d\n", res.MeanStaleness, res.MaxStaleness)
	fmt.Printf("memory: worker optimizer %d B, server %d B\n", res.WorkerStateBytes, res.ServerStateBytes)
	fmt.Printf("compute: %.1f ms/iteration\n", 1000*res.ComputePerIter)

	if *csv != "" {
		f, err := os.Create(*csv)
		fatalIf(err)
		defer f.Close()
		fatalIf(stats.WriteCSV(f, res.Loss, res.Accuracy))
		fmt.Printf("curves written to %s\n", *csv)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-train:", err)
		os.Exit(1)
	}
}

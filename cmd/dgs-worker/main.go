// Command dgs-worker runs one training worker against a standalone
// dgs-server. Model and dataset flags must match the server's geometry.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dgs/internal/data"
	"dgs/internal/nn"
	"dgs/internal/telemetry"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
	"dgs/internal/transport"
)

func parseMethod(s string) (trainer.Method, error) {
	switch strings.ToLower(s) {
	case "msgd":
		return trainer.MSGD, nil
	case "asgd":
		return trainer.ASGD, nil
	case "gd", "gd-async":
		return trainer.GDAsync, nil
	case "dgc", "dgc-async":
		return trainer.DGCAsync, nil
	case "dgs":
		return trainer.DGS, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7000", "server address")
		id       = flag.Int("id", 0, "this worker's id (0..workers-1)")
		workers  = flag.Int("workers", 4, "total worker count (must match server)")
		method   = flag.String("method", "dgs", "msgd|asgd|gd|dgc|dgs")
		classes  = flag.Int("classes", 10, "model classes (must match server)")
		inC      = flag.Int("inc", 3, "input channels")
		inHW     = flag.Int("hw", 16, "input spatial size")
		batch    = flag.Int("batch", 8, "batch size")
		epochs   = flag.Int("epochs", 6, "epochs (total across workers)")
		lr       = flag.Float64("lr", 0.1, "learning rate")
		momentum = flag.Float64("momentum", 0.7, "momentum m")
		keep     = flag.Float64("keep", 0.01, "Top-k keep ratio")
		codec    = flag.String("codec", "raw", "wire compression backend (raw|ternary|sbc); lossy codecs fold their error into the residual state")
		seed     = flag.Uint64("seed", 1, "seed (must match other workers for identical θ0)")

		pipeline = flag.Int("pipeline", 1, "in-flight exchanges (1 = synchronous, >1 overlaps comm with compute)")

		retries    = flag.Int("retries", 8, "reconnect retries per exchange")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "base of the full-jitter exponential retry backoff")
		maxBackoff = flag.Duration("max-backoff", 2*time.Second, "cap on the retry backoff (0 = uncapped)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-exchange deadline (0 disables)")
		rejoins    = flag.Int("rejoins", 0, "crash-recovery budget: restart the loop as a fresh incarnation this many times")
		faultDrop  = flag.Float64("fault-drop", 0, "inject: P(request dropped before send)")
		faultTorn  = flag.Float64("fault-torn", 0, "inject: P(response torn after server processed)")
		faultDup   = flag.Float64("fault-dup", 0, "inject: P(request delivered twice)")
		faultReset = flag.Float64("fault-reset", 0, "inject: P(connection reset)")
		faultDelay = flag.Duration("fault-delay", 0, "inject: max random per-exchange delay")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault injection schedule seed")
		metrics    = flag.String("metrics", "", "telemetry HTTP address for /metrics and /debug/pprof (empty disables)")
	)
	flag.Parse()

	if *metrics != "" {
		msrv, err := telemetry.ListenAndServe(*metrics, nil)
		fatalIf(err)
		defer msrv.Close()
		fmt.Printf("dgs-worker %d: telemetry on %s/metrics\n", *id, msrv.URL())
	}

	m, err := parseMethod(*method)
	fatalIf(err)

	dcfg := data.CIFARLike(*seed)
	dcfg.C, dcfg.H, dcfg.W = *inC, *inHW, *inHW
	dcfg.Classes = *classes
	ds := data.NewSyntheticImages(dcfg)

	mcfg := nn.ResNetSConfig{
		InC: *inC, H: *inHW, W: *inHW,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: *classes,
	}
	cfg := trainer.Config{
		Method: m, Workers: *workers, BatchSize: *batch, Epochs: *epochs,
		LR: float32(*lr), LRDecayAt: []int{*epochs * 6 / 10, *epochs * 8 / 10},
		Momentum: float32(*momentum), KeepRatio: *keep,
		Codec: *codec,
		Seed:  *seed, Dataset: ds,
		BuildModel:    func(rng *tensor.RNG) *nn.Model { return nn.NewResNetS(rng, mcfg) },
		EvalLimit:     512,
		PipelineDepth: *pipeline,
	}

	// Transport stack: trainer.NewDialStack builds the canonical client
	// layering — SessionClient → Reconnecting → optional Faulty → TCPClient,
	// or the native PipelinedSession when -pipeline > 1 without fault
	// injection. Each call is one worker incarnation; its hello makes the
	// server resync this id and ship a dense snapshot.
	var faults *transport.FaultConfig
	if *faultDrop > 0 || *faultTorn > 0 || *faultDup > 0 || *faultReset > 0 || *faultDelay > 0 {
		faults = &transport.FaultConfig{
			Seed:           *faultSeed,
			DropBeforeSend: *faultDrop,
			DropAfterSend:  *faultTorn,
			Duplicate:      *faultDup,
			Reset:          *faultReset,
			Delay:          0.25,
			MaxDelay:       *faultDelay,
		}
	}
	dialStack := trainer.NewDialStack(trainer.DialOptions{
		Addr:     *addr,
		Pipeline: *pipeline,
		Retries:  *retries, Backoff: *backoff, MaxBackoff: *maxBackoff,
		Timeout: *timeout,
		Faults:  faults,
	})

	fmt.Printf("dgs-worker %d: connecting to %s, method=%s\n", *id, *addr, m)
	res, err := trainer.RunResilientWorkerLoop(cfg, *id, dialStack, *rejoins)
	fatalIf(err)
	fmt.Printf("dgs-worker %d: done, %d iterations, final loss %.4f\n", *id, res.Iterations, res.Loss.Last().Y)
	if *id == 0 {
		fmt.Printf("dgs-worker 0: final top-1 accuracy %.2f%%\n", 100*res.FinalAccuracy)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-worker:", err)
		os.Exit(1)
	}
}

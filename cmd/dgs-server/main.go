// Command dgs-server runs a standalone DGS parameter server over TCP.
// Workers (cmd/dgs-worker) connect to it with matching model/dataset flags
// so the layer geometry agrees.
//
// Example (three terminals):
//
//	dgs-server -addr 127.0.0.1:7000 -workers 2
//	dgs-worker -addr 127.0.0.1:7000 -id 0 -workers 2
//	dgs-worker -addr 127.0.0.1:7000 -id 1 -workers 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/checkpoint"
	"dgs/internal/nn"
	"dgs/internal/ps"
	"dgs/internal/telemetry"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
	"dgs/internal/transport"
)

// capturer is the slice of the server surface the checkpoint loop needs;
// both ps.Server and ps.ShardedServer satisfy it.
type capturer interface {
	NewCaptureState() *checkpoint.State
	Capture(*checkpoint.State) (checkpoint.CaptureStats, error)
	Timestamp() uint64
}

func fatalIf(err error, what string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dgs-server: %s: %v\n", what, err)
		os.Exit(1)
	}
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "listen address")
		workers   = flag.Int("workers", 4, "number of workers that will attach")
		classes   = flag.Int("classes", 10, "model output classes (must match workers)")
		inC       = flag.Int("inc", 3, "input channels")
		inHW      = flag.Int("hw", 16, "input spatial size")
		secondary = flag.Bool("secondary", false, "enable downward secondary compression")
		ratio     = flag.Float64("ratio", 0.01, "secondary compression keep ratio")
		denseDown = flag.Bool("dense-down", false, "ship the whole model downward (ASGD mode)")
		codec     = flag.String("codec", "mirror", "downward wire codec policy: mirror (answer in the request's codec) or a codec name (raw|ternary|sbc) forced for v3 peers")
		shards    = flag.Int("shards", 1, "partition layers across this many lock-independent shards")
		blockSize = flag.Int("block-size", 0, "dirty-tracking block size in elements (power of two; 0 = auto-tune from the layer geometry)")
		statEvery = flag.Duration("stats", 10*time.Second, "stats print interval")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-exchange deadline (0 disables)")

		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-recovery checkpoints (empty disables; restores the latest on start)")
		ckptEvery    = flag.Duration("checkpoint-interval", 30*time.Second, "asynchronous checkpoint interval")
		ckptKeep     = flag.Int("checkpoint-keep", 3, "checkpoints retained on disk")
		maxInflight  = flag.Int("max-inflight", 0, "admission bound on concurrently executing pushes (0 = unbounded); excess pushes get a RetryAfter frame")
		retryHint    = flag.Duration("retry-hint", 5*time.Millisecond, "backoff hint attached to overload rejections")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before exiting anyway")

		metrics       = flag.String("metrics", "127.0.0.1:9090", "telemetry HTTP address for /metrics, /manifest and /debug/pprof (empty disables)")
		manifestPath  = flag.String("manifest", "", "periodically write the JSON run manifest to this file")
		manifestEvery = flag.Duration("manifest-every", 10*time.Second, "manifest write interval")
	)
	flag.Parse()

	model := nn.NewResNetS(tensor.NewRNG(1), nn.ResNetSConfig{
		InC: *inC, H: *inHW, W: *inHW,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: *classes,
	})
	shift := uint(0)
	if *blockSize > 0 {
		if *blockSize&(*blockSize-1) != 0 {
			fmt.Fprintf(os.Stderr, "dgs-server: -block-size %d is not a power of two\n", *blockSize)
			os.Exit(2)
		}
		for 1<<shift < *blockSize {
			shift++
		}
	}
	cfg := ps.Config{
		LayerSizes:     model.LayerSizes(),
		Workers:        *workers,
		Secondary:      *secondary,
		SecondaryRatio: *ratio,
		DenseDownward:  *denseDown,
		BlockShift:     shift,
	}
	// Restart recovery: when a checkpoint directory is configured and holds
	// a readable snapshot, the server resumes from it instead of θ0 — the
	// session layer's fresh incarnation id then makes every reconnecting
	// worker detect the restart and resync.
	var server ps.Pusher
	var capSrv capturer
	restored, restoredCodec := "", ""
	if *ckptDir != "" {
		if st, path, err := checkpoint.LoadLatest(*ckptDir); err == nil {
			restoredCodec = st.Codec
			if *shards > 1 {
				s, rerr := ps.RestoreShardedServer(cfg, *shards, st)
				fatalIf(rerr, "restore "+path)
				server, capSrv = s, s
			} else {
				s, rerr := ps.RestoreServer(cfg, st)
				fatalIf(rerr, "restore "+path)
				server, capSrv = s, s
			}
			restored = path
		} else if !errors.Is(err, checkpoint.ErrNoCheckpoint) {
			fatalIf(err, "load checkpoint")
		}
	}
	if server == nil {
		if *shards > 1 {
			s := ps.NewShardedServer(cfg, *shards)
			server, capSrv = s, s
		} else {
			s := ps.NewServer(cfg)
			server, capSrv = s, s
		}
	}
	// The exactly-once session layer makes worker retries safe (replayed
	// pushes answer from cache instead of re-applying) and resyncs
	// crashed-and-rejoined workers with a dense snapshot. The admission
	// gate sits outside it so shed pushes never consume session state.
	eo, err := trainer.ExactlyOnceHandlerWithCodec(server, *codec)
	fatalIf(err, "codec policy")
	gate := transport.NewGate(eo.Handle, *maxInflight)
	gate.RetryHint = *retryHint
	gate.DrainHint = *drainTimeout
	srv, err := transport.ListenTCP(*addr, gate.Handle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-server:", err)
		os.Exit(1)
	}
	srv.SetExchangeTimeout(*timeout)
	defer srv.Close()
	fmt.Printf("dgs-server: listening on %s (%d params, %d workers, %d shard(s), secondary=%v, codec=%s)\n",
		srv.Addr(), model.NumParams(), *workers, *shards, *secondary, *codec)
	if restored != "" {
		fmt.Printf("dgs-server: restored state from %s (t=%d)\n", restored, capSrv.Timestamp())
		if restoredCodec != "" && restoredCodec != *codec {
			// Legal — error folding makes snapshots codec-agnostic — but worth
			// flagging so an operator notices the policy change.
			fmt.Printf("dgs-server: note: snapshot was taken under codec policy %q, continuing with %q\n",
				restoredCodec, *codec)
		}
	}

	// Asynchronous checkpointing: a dedicated goroutine captures a
	// consistent cut (incremental — only blocks dirtied since the previous
	// capture are copied) and writes it atomically, entirely off the push
	// path. finalCkpt is reused by the drain path for the shutdown snapshot.
	var ckptWriter *checkpoint.Writer
	var capState *checkpoint.State
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	close(ckptDone)
	finalCkpt := func(what string) {
		if ckptWriter == nil {
			return
		}
		if _, err := capSrv.Capture(capState); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-server: %s capture: %v\n", what, err)
			return
		}
		path, err := ckptWriter.Write(capState)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgs-server: %s write: %v\n", what, err)
			return
		}
		fmt.Printf("dgs-server: %s checkpoint %s (t=%d)\n", what, path, capSrv.Timestamp())
	}
	if *ckptDir != "" {
		ckptWriter = &checkpoint.Writer{Dir: *ckptDir, Keep: *ckptKeep}
		capState = capSrv.NewCaptureState()
		capState.Codec = *codec
		ckptDone = make(chan struct{})
		go func() {
			defer close(ckptDone)
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			var lastT uint64
			wrote := false
			for {
				select {
				case <-stopCkpt:
					return
				case <-tick.C:
					stats, err := capSrv.Capture(capState)
					if err != nil {
						fmt.Fprintf(os.Stderr, "dgs-server: checkpoint capture: %v\n", err)
						continue
					}
					// An idle server would otherwise rewrite an identical
					// file every interval; skip until something changes.
					t := capSrv.Timestamp()
					if wrote && stats.BlocksCopied == 0 && t == lastT {
						continue
					}
					if _, err := ckptWriter.Write(capState); err != nil {
						fmt.Fprintf(os.Stderr, "dgs-server: checkpoint write: %v\n", err)
						continue
					}
					lastT, wrote = t, true
					fmt.Printf("dgs-server: checkpoint t=%d (%d blocks copied, %d skipped, %d bytes)\n",
						t, stats.BlocksCopied, stats.BlocksSkipped, stats.Bytes)
				}
			}
		}()
	}

	manifest := telemetry.NewManifest(nil)
	manifest.Set("role", "server")
	manifest.Set("workers", *workers)
	manifest.Set("params", model.NumParams())
	manifest.Set("secondary", *secondary)
	manifest.Set("secondary_ratio", *ratio)
	manifest.Set("dense_downward", *denseDown)
	manifest.Set("codec", *codec)
	manifest.Set("shards", *shards)
	manifest.Set("addr", srv.Addr())
	if *metrics != "" {
		msrv, err := telemetry.ListenAndServe(*metrics, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dgs-server:", err)
			os.Exit(1)
		}
		msrv.SetManifest(manifest)
		defer msrv.Close()
		fmt.Printf("dgs-server: telemetry on %s/metrics\n", msrv.URL())
	}
	if *manifestPath != "" {
		stop := manifest.StartPeriodic(*manifestPath, *manifestEvery)
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*statEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := server.Stats()
			mean := 0.0
			if st.Pushes > 0 {
				mean = float64(st.StalenessSum) / float64(st.Pushes)
			}
			ss := eo.Stats()
			fmt.Printf("dgs-server: pushes=%d staleness(mean=%.2f max=%d) traffic(up=%dKB down=%dKB) sessions(joins=%d replays=%d stale=%d resyncs=%d)\n",
				st.Pushes, mean, st.MaxStaleness, srv.Traffic.Up()/1000, srv.Traffic.Down()/1000,
				ss.Hellos, ss.Replays, ss.StaleRejected, st.Resyncs)
		case s := <-sig:
			// Graceful drain: stop admitting pushes (workers get RetryAfter
			// and back off), let in-flight ones finish, stop the periodic
			// checkpointer, take the final snapshot, exit. Eq. 5 holds in
			// the snapshot because nothing is mid-apply once Drain returns.
			fmt.Printf("dgs-server: %v — draining\n", s)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			if err := gate.Drain(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-server: drain incomplete: %v\n", err)
			}
			cancel()
			close(stopCkpt)
			<-ckptDone
			finalCkpt("final")
			fmt.Println("dgs-server: shutting down")
			return
		}
	}
}

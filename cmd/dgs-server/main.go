// Command dgs-server runs a standalone DGS parameter server over TCP.
// Workers (cmd/dgs-worker) connect to it with matching model/dataset flags
// so the layer geometry agrees.
//
// Example (three terminals):
//
//	dgs-server -addr 127.0.0.1:7000 -workers 2
//	dgs-worker -addr 127.0.0.1:7000 -id 0 -workers 2
//	dgs-worker -addr 127.0.0.1:7000 -id 1 -workers 2
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dgs/internal/nn"
	"dgs/internal/ps"
	"dgs/internal/telemetry"
	"dgs/internal/tensor"
	"dgs/internal/trainer"
	"dgs/internal/transport"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7000", "listen address")
		workers   = flag.Int("workers", 4, "number of workers that will attach")
		classes   = flag.Int("classes", 10, "model output classes (must match workers)")
		inC       = flag.Int("inc", 3, "input channels")
		inHW      = flag.Int("hw", 16, "input spatial size")
		secondary = flag.Bool("secondary", false, "enable downward secondary compression")
		ratio     = flag.Float64("ratio", 0.01, "secondary compression keep ratio")
		denseDown = flag.Bool("dense-down", false, "ship the whole model downward (ASGD mode)")
		shards    = flag.Int("shards", 1, "partition layers across this many lock-independent shards")
		blockSize = flag.Int("block-size", 0, "dirty-tracking block size in elements (power of two; 0 = default 1024)")
		statEvery = flag.Duration("stats", 10*time.Second, "stats print interval")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-exchange deadline (0 disables)")

		metrics       = flag.String("metrics", "127.0.0.1:9090", "telemetry HTTP address for /metrics, /manifest and /debug/pprof (empty disables)")
		manifestPath  = flag.String("manifest", "", "periodically write the JSON run manifest to this file")
		manifestEvery = flag.Duration("manifest-every", 10*time.Second, "manifest write interval")
	)
	flag.Parse()

	model := nn.NewResNetS(tensor.NewRNG(1), nn.ResNetSConfig{
		InC: *inC, H: *inHW, W: *inHW,
		StageChannels: []int{8, 16, 32}, Blocks: 1, Classes: *classes,
	})
	shift := uint(0)
	if *blockSize > 0 {
		if *blockSize&(*blockSize-1) != 0 {
			fmt.Fprintf(os.Stderr, "dgs-server: -block-size %d is not a power of two\n", *blockSize)
			os.Exit(2)
		}
		for 1<<shift < *blockSize {
			shift++
		}
	}
	cfg := ps.Config{
		LayerSizes:     model.LayerSizes(),
		Workers:        *workers,
		Secondary:      *secondary,
		SecondaryRatio: *ratio,
		DenseDownward:  *denseDown,
		BlockShift:     shift,
	}
	var server ps.Pusher
	if *shards > 1 {
		server = ps.NewShardedServer(cfg, *shards)
	} else {
		server = ps.NewServer(cfg)
	}
	// The exactly-once session layer makes worker retries safe (replayed
	// pushes answer from cache instead of re-applying) and resyncs
	// crashed-and-rejoined workers with a dense snapshot.
	eo := trainer.ExactlyOnceHandler(server)
	srv, err := transport.ListenTCP(*addr, eo.Handle)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgs-server:", err)
		os.Exit(1)
	}
	srv.SetExchangeTimeout(*timeout)
	defer srv.Close()
	fmt.Printf("dgs-server: listening on %s (%d params, %d workers, %d shard(s), secondary=%v)\n",
		srv.Addr(), model.NumParams(), *workers, *shards, *secondary)

	manifest := telemetry.NewManifest(nil)
	manifest.Set("role", "server")
	manifest.Set("workers", *workers)
	manifest.Set("params", model.NumParams())
	manifest.Set("secondary", *secondary)
	manifest.Set("secondary_ratio", *ratio)
	manifest.Set("dense_downward", *denseDown)
	manifest.Set("shards", *shards)
	manifest.Set("addr", srv.Addr())
	if *metrics != "" {
		msrv, err := telemetry.ListenAndServe(*metrics, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dgs-server:", err)
			os.Exit(1)
		}
		msrv.SetManifest(manifest)
		defer msrv.Close()
		fmt.Printf("dgs-server: telemetry on %s/metrics\n", msrv.URL())
	}
	if *manifestPath != "" {
		stop := manifest.StartPeriodic(*manifestPath, *manifestEvery)
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*statEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := server.Stats()
			mean := 0.0
			if st.Pushes > 0 {
				mean = float64(st.StalenessSum) / float64(st.Pushes)
			}
			ss := eo.Stats()
			fmt.Printf("dgs-server: pushes=%d staleness(mean=%.2f max=%d) traffic(up=%dKB down=%dKB) sessions(joins=%d replays=%d stale=%d resyncs=%d)\n",
				st.Pushes, mean, st.MaxStaleness, srv.Traffic.Up()/1000, srv.Traffic.Down()/1000,
				ss.Hellos, ss.Replays, ss.StaleRejected, st.Resyncs)
		case <-sig:
			fmt.Println("dgs-server: shutting down")
			return
		}
	}
}

// Command dgs-bench regenerates the paper's tables and figures, and runs
// the tracked hot-path microbenchmarks.
//
// Usage:
//
//	dgs-bench -list
//	dgs-bench -exp figure2            # one experiment at short scale
//	dgs-bench -exp table3 -full       # paper-faithful scale
//	dgs-bench -all                    # everything (slow at -full)
//	dgs-bench -exp figure2 -out dir   # also write report text files
//	dgs-bench -microbench             # kernel/hot-path benchmarks → BENCH_PR2.json
//	dgs-bench -pipebench              # pipelined-exchange benchmark → BENCH_PR4.json
//	dgs-bench -serverbench            # many-worker server saturation → BENCH_PR7.json
//	dgs-bench -wirebench              # per-codec wire bytes/step → BENCH_PR8.json
//	dgs-bench -readbench              # snapshot stall + replica lag → BENCH_PR10.json
//	dgs-bench -microbench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dgs/internal/bench"
	"dgs/internal/experiments"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		exp        = flag.String("exp", "", "experiment id to run (see -list)")
		all        = flag.Bool("all", false, "run every experiment")
		full       = flag.Bool("full", false, "paper-faithful scale (slow); default is short scale")
		out        = flag.String("out", "", "directory to also write report text files into")
		micro      = flag.Bool("microbench", false, "run the tracked microbenchmarks and write a JSON report")
		pipe       = flag.Bool("pipebench", false, "run the pipelined-exchange benchmark and write a JSON report")
		server     = flag.Bool("serverbench", false, "run the many-worker server saturation benchmark and write a JSON report")
		ckpt       = flag.Bool("ckptbench", false, "run the checkpoint capture/interference benchmark and write a JSON report")
		wire       = flag.Bool("wirebench", false, "run the per-codec wire compression benchmark and write a JSON report")
		wireSteps  = flag.Int("wire-steps", 0, "measured exchanges per codec/workload cell for -wirebench (0 = default 64)")
		aggb       = flag.Bool("aggbench", false, "run the aggregation-tier fan-in benchmark (64 TCP workers, direct vs tiered) and write a JSON report")
		aggPush    = flag.Int("agg-pushes", 0, "measured pushes per worker for -aggbench (0 = default 64)")
		readb      = flag.Bool("readbench", false, "run the read-path benchmark (snapshot stall + replica lag) and write a JSON report")
		readPush   = flag.Int("read-pushes", 0, "measured pushes per worker for -readbench (0 = default 256)")
		microOut   = flag.String("json", "", "report path (default BENCH_PR2.json for -microbench, BENCH_PR4.json for -pipebench, BENCH_PR7.json for -serverbench, BENCH_PR6.json for -ckptbench, BENCH_PR8.json for -wirebench)")
		benchtime  = flag.String("benchtime", "", "per-benchmark time or count for -microbench (e.g. 1s, 100x)")
		pipeSteps  = flag.Int("pipe-steps", 0, "measured steps per pipelined run (0 = default 240)")
		pipeRTT    = flag.Duration("pipe-rtt", 0, "simulated round-trip time (0 = auto-calibrated from compute)")
		serverPush = flag.Int("server-pushes", 0, "measured pushes per worker for -serverbench (0 = default 256)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			}
		}()
	}

	if *micro {
		path := *microOut
		if path == "" {
			path = "BENCH_PR2.json"
		}
		if err := runMicro(path, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pipe {
		path := *microOut
		if path == "" {
			path = "BENCH_PR4.json"
		}
		if err := runPipe(path, *pipeSteps, *pipeRTT); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *server {
		path := *microOut
		if path == "" {
			path = "BENCH_PR7.json"
		}
		if err := runServer(path, *serverPush); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ckpt {
		path := *microOut
		if path == "" {
			path = "BENCH_PR6.json"
		}
		if err := runCkpt(path, *serverPush); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *wire {
		path := *microOut
		if path == "" {
			path = "BENCH_PR8.json"
		}
		if err := runWire(path, *wireSteps); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *aggb {
		path := *microOut
		if path == "" {
			path = "BENCH_PR9.json"
		}
		if err := runAgg(path, *aggPush); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *readb {
		path := *microOut
		if path == "" {
			path = "BENCH_PR10.json"
		}
		if err := runRead(path, *readPush); err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale := experiments.Short
	if *full {
		scale = experiments.Full
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "dgs-bench: specify -exp <id>, -all, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(strings.TrimSpace(id), scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.Text)
		fmt.Printf("[%s completed in %v]\n\n", rep.ID, time.Since(start).Round(time.Second))
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.Text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
				os.Exit(1)
			}
			for name, svg := range rep.Figures {
				if err := os.WriteFile(filepath.Join(*out, name), []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

// runPipe runs the pipelined-exchange benchmark and writes the JSON report.
func runPipe(path string, steps int, rtt time.Duration) error {
	rep, err := bench.RunPipeline(steps, rtt)
	if err != nil {
		return err
	}
	fmt.Printf("rtt %.2f ms, serial step %.2f ms, %d steps per run\n",
		rep.RTTMillis, rep.SerialStepMillis, rep.Steps)
	fmt.Printf("sync (depth 1):      %8.1f steps/sec\n", rep.StepsPerSecSync)
	fmt.Printf("pipelined (depth %d): %8.1f steps/sec\n", rep.PipelineDepth, rep.StepsPerSecPipelined)
	fmt.Printf("speedup:             %8.2fx\n", rep.Speedup)
	fmt.Printf("tcp exchange:        %8.0f ns/op %d allocs/op\n", rep.ExchangeNsPerOp, rep.ExchangeAllocsPerOp)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[pipeline report written to %s]\n", path)
	return nil
}

// runServer runs the many-worker server saturation benchmark and writes the
// JSON report.
func runServer(path string, pushesPerWorker int) error {
	rep, err := bench.RunServer(pushesPerWorker)
	if err != nil {
		return err
	}
	fmt.Printf("%d pushes per worker\n", rep.PushesPerWorker)
	for _, r := range rep.Results {
		fmt.Printf("%-15s %2d workers %d shard(s) block %4d: %9.0f pushes/sec (p99 %7.0f µs) vs baseline %9.0f (p99 %7.0f µs) = %5.2fx, %4.1f%% blocks skipped\n",
			r.Workload, r.Workers, r.Shards, r.BlockSize,
			r.PushesPerSec, r.P99Micros,
			r.BaselinePushesPerSec, r.BaselineP99Micros,
			r.Speedup, 100*r.ScanSkipRatio)
	}
	fmt.Printf("snapshot stall (2 scrapers): full-lock %9.0f pushes/sec (p99 %7.0f µs) vs copy-on-version %9.0f (p99 %7.0f µs) = %5.2fx\n",
		rep.SnapStallLockedPushesPerSec, rep.SnapStallLockedP99Micros,
		rep.SnapStallCopyPushesPerSec, rep.SnapStallCopyP99Micros, rep.SnapStallSpeedup)
	fmt.Printf("gated: embed 8-worker %.2fx, secondary 8-worker %.2fx, cnn skip ratio %.3f\n",
		rep.SpeedupAt8, rep.SecondarySpeedupAt8, rep.CNNScanSkipRatio)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[server report written to %s]\n", path)
	return nil
}

func runAgg(path string, pushesPerWorker int) error {
	rep, err := bench.RunAgg(pushesPerWorker)
	if err != nil {
		return err
	}
	fmt.Printf("%d workers, %d pushes each, upstream max-inflight %d\n",
		rep.Workers, rep.PushesPerWorker, rep.MaxInflight)
	for _, r := range rep.Results {
		extra := ""
		if r.Topology == "tiered" {
			extra = fmt.Sprintf("  dedup %5.2fx shared-frames %4.1f%% window %4.1f parts",
				r.DedupFactor, 100*r.SharedFrameRatio, r.MeanWindowParts)
		}
		fmt.Printf("%-7s %d agg(s): %9.0f pushes/sec (p99 %7.0f µs, worst worker %7.0f µs)%s\n",
			r.Topology, r.Aggregators, r.PushesPerSec, r.P99Micros, r.WorstWorkerP99Micros, extra)
	}
	fmt.Printf("gated: tiered 4-agg speedup %.2fx over direct\n", rep.SpeedupAt4)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[agg report written to %s]\n", path)
	return nil
}

// runRead runs the read-path benchmark (snapshot stall under concurrent
// scrapers, replica lag and drain exactness) and writes the JSON report.
func runRead(path string, pushesPerWorker int) error {
	rep, err := bench.RunRead(pushesPerWorker)
	if err != nil {
		return err
	}
	fmt.Printf("%d workers, %d pushes each, %d scrapers\n", rep.Workers, rep.PushesPerWorker, rep.Scrapers)
	fmt.Printf("no scraper:      %9.0f pushes/sec\n", rep.NoScrapePushesPerSec)
	fmt.Printf("full-lock scrape:%9.0f pushes/sec (p99 %7.0f µs, %6.1f scrapes/sec)\n",
		rep.LockedPushesPerSec, rep.LockedP99Micros, rep.LockedScrapesPerSec)
	fmt.Printf("copy-on-version: %9.0f pushes/sec (p99 %7.0f µs, %6.1f scrapes/sec)\n",
		rep.CopyPushesPerSec, rep.CopyP99Micros, rep.CopyScrapesPerSec)
	fmt.Printf("replica (%s): %d polls, %d coords, %d rebase(s), worst poll gap %.1f ms, drain %.1f ms exact=%v\n",
		rep.ReplicaCodec, rep.ReplicaPolls, rep.ReplicaAppliedCoords, rep.ReplicaRebases,
		rep.MaxPollGapMillis, rep.DrainMillis, rep.DrainExact)
	fmt.Printf("gated: scraped push throughput %.2fx vs full-lock\n", rep.ScrapeSpeedup)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[read report written to %s]\n", path)
	return nil
}

func runCkpt(path string, pushesPerWorker int) error {
	if pushesPerWorker <= 0 {
		pushesPerWorker = 256
	}
	rep, err := bench.RunCkpt(pushesPerWorker)
	if err != nil {
		return err
	}
	fmt.Printf("model %d bytes, block size %d, %d workers\n", rep.ModelBytes, rep.BlockSize, rep.Workers)
	fmt.Printf("capture: full %.0f µs, incremental %.0f µs = %.2fx (%.1f%% blocks skipped)\n",
		rep.FullCaptureMicros, rep.IncrCaptureMicros, rep.IncrementalSpeedup, 100*rep.SkipRatio)
	fmt.Printf("encode: %d bytes in %.0f µs\n", rep.EncodedBytes, rep.EncodeMicros)
	fmt.Printf("push interference: %.0f/s alone, %.0f/s under checkpointing = %.2f retained (%d captures)\n",
		rep.PushesPerSecBaseline, rep.PushesPerSecCkpt, rep.PushThroughputRatio, rep.CapturesDuringRun)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[checkpoint report written to %s]\n", path)
	return nil
}

// runWire runs the per-codec wire compression benchmark and writes the JSON
// report.
func runWire(path string, steps int) error {
	rep, err := bench.RunWire(steps)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-8s %-6s up %9.0f B/step (%.3fx raw)  down %9.0f B/step (%.3fx raw)  encode %8.0f ns/op  decode %8.0f ns/op\n",
			r.Codec, r.Workload, r.BytesPerStepUp, r.UpRatioVsRaw,
			r.BytesPerStepDown, r.DownRatioVsRaw, r.EncodeNsPerOp, r.DecodeNsPerOp)
	}
	fmt.Printf("gated: worst quantized embed ratio %.3fx over %v\n",
		rep.QuantizedEmbedMaxRatio, rep.QuantizedCodecs)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wire report written to %s]\n", path)
	return nil
}

// runMicro runs the tracked microbenchmarks and writes the JSON report.
func runMicro(path, benchtime string) error {
	rep, err := bench.RunMicro(benchtime)
	if err != nil {
		return err
	}
	for _, r := range rep.Results {
		fmt.Printf("%-24s %14.0f ns/op %8d B/op %6d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	for key, s := range rep.Speedups {
		fmt.Printf("%-24s %.2fx vs baseline\n", key, s)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[microbench report written to %s]\n", path)
	return nil
}

// Command dgs-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dgs-bench -list
//	dgs-bench -exp figure2            # one experiment at short scale
//	dgs-bench -exp table3 -full       # paper-faithful scale
//	dgs-bench -all                    # everything (slow at -full)
//	dgs-bench -exp figure2 -out dir   # also write report text files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dgs/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list available experiments")
		exp  = flag.String("exp", "", "experiment id to run (see -list)")
		all  = flag.Bool("all", false, "run every experiment")
		full = flag.Bool("full", false, "paper-faithful scale (slow); default is short scale")
		out  = flag.String("out", "", "directory to also write report text files into")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	scale := experiments.Short
	if *full {
		scale = experiments.Full
	}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "dgs-bench: specify -exp <id>, -all, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(strings.TrimSpace(id), scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dgs-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.Text)
		fmt.Printf("[%s completed in %v]\n\n", rep.ID, time.Since(start).Round(time.Second))
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, rep.ID+".txt")
			if err := os.WriteFile(path, []byte(rep.Text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
				os.Exit(1)
			}
			for name, svg := range rep.Figures {
				if err := os.WriteFile(filepath.Join(*out, name), []byte(svg), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "dgs-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}
